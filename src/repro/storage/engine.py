"""The per-database storage engine: mode, segment directory, buffer
pool, and spill bookkeeping.

One :class:`StorageEngine` is owned by each :class:`~repro.db.Database`.
In ``"memory"`` mode it is nearly inert (no directory, no pool) — spill
*decisions* still fire, as pure byte accounting, so simulated metrics
stay identical across modes. In ``"disk"`` mode it provides the segment
file directory (a private temp dir, cleaned up on garbage collection),
the shared :class:`~repro.storage.bufferpool.BufferPool`, and physical
spill files: operator state that exceeds the budget round-trips through
the exact segment codec before being consumed.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Dict, List, Optional, Sequence

from ..config import ClusterConfig
from ..errors import ExecutionError
from .bufferpool import BufferPool
from .segment import read_segment_file, write_segment_file

STORAGE_MODES = ("memory", "disk")


class StorageEngine:
    """Storage-mode state shared by every table of one database."""

    def __init__(self, config: ClusterConfig):
        if config.storage_mode not in STORAGE_MODES:
            raise ExecutionError(
                f"unknown storage_mode {config.storage_mode!r}; "
                f"expected one of {STORAGE_MODES}"
            )
        self.config = config
        self.mode = config.storage_mode
        self.budget_bytes = config.effective_buffer_pool_bytes
        self.buffer_pool: Optional[BufferPool] = (
            BufferPool(self.budget_bytes) if self.mode == "disk" else None
        )
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._counter = 0
        #: the database's fault injector (assigned by Database right
        #: after executor construction); sealed base-table segment writes
        #: consult it at their durability barriers
        self.injector = None
        #: cumulative spill accounting across queries (service stats)
        self.spilled_bytes = 0.0
        self.spill_events = 0
        # one engine is shared by all concurrently admitted statements;
        # the lock guards the counters and lazy tempdir (assigned last)
        self._lock = threading.RLock()

    def set_injector(self, injector) -> None:
        """Share the database's fault injector with segment writers
        (Database assigns it right after executor construction)."""
        with self._lock:
            self.injector = injector

    @property
    def root(self) -> str:
        """The segment/spill file directory, created on first use."""
        with self._lock:
            if self._tempdir is None:
                self._tempdir = tempfile.TemporaryDirectory(
                    prefix="repro-segments-"
                )
            return self._tempdir.name

    def allocate_segment_path(self, stem: str) -> str:
        with self._lock:
            self._counter += 1
            counter = self._counter
        safe = "".join(c if c.isalnum() else "_" for c in stem) or "seg"
        return os.path.join(self.root, f"{safe}-{counter:08d}.seg")

    def note_spill(self, nbytes: float) -> None:
        with self._lock:
            self.spilled_bytes += nbytes
            self.spill_events += 1

    def spill_roundtrip(self, rows: Sequence[tuple]) -> List[tuple]:
        """Physically write spilled operator state through the segment
        codec and read it back (disk mode only; the codec is exact, so
        downstream results are unchanged). Memory mode returns the rows
        as-is — the spill is simulated, charged but not performed."""
        rows = list(rows)
        if self.mode != "disk" or not rows:
            return rows
        path = self.allocate_segment_path("spill")
        # spills are scratch (recomputed after a crash) and run from
        # parallel partition tasks: not a durability barrier
        write_segment_file(path, rows, len(rows[0]), durable=False)
        try:
            return read_segment_file(path)
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

    def stats(self) -> Dict[str, object]:
        """The storage block of ``QueryService.stats()``."""
        with self._lock:
            out: Dict[str, object] = {
                "mode": self.mode,
                "budget_bytes": self.budget_bytes,
                "spilled_bytes": self.spilled_bytes,
                "spill_events": self.spill_events,
            }
        if self.buffer_pool is not None:
            out["buffer_pool"] = self.buffer_pool.stats()
        return out

    def close(self) -> None:
        with self._lock:
            tempdir, self._tempdir = self._tempdir, None
        if tempdir is not None:
            tempdir.cleanup()
