"""A budgeted buffer pool for decoded disk segments.

Classic LRU with pin counts: readers ``acquire`` (pinning the entry, or
recording a miss), ``insert`` decoded payloads pinned, and ``release``
when done; eviction only ever removes unpinned entries, least recently
used first, until the pool fits its byte budget. A single entry larger
than the whole budget is admitted while pinned and evicted on release —
arbitrarily small budgets degrade to re-reading every segment, they
never break correctness.

The byte currency is the engine's *serialized* row-size accounting
(``cluster.row_bytes``), the same currency the simulated cost model
charges, so the pool budget and the spill threshold speak the same
units. Hit/miss/eviction counters feed ``QueryMetrics`` and
``QueryService.stats()``.

One pool is shared by every concurrently admitted statement (and by the
partition tasks inside each), so every public method takes the pool's
lock; pin counts, LRU order, and the byte total are only ever mutated
under it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional


class _Entry:
    __slots__ = ("payload", "nbytes", "pins")

    def __init__(self, payload, nbytes: float, pins: int):
        self.payload = payload
        self.nbytes = nbytes
        self.pins = pins


class BufferPool:
    """LRU-with-pin-counts cache of decoded segments, bounded in bytes."""

    def __init__(self, budget_bytes: float):
        self.budget_bytes = float(budget_bytes)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> float:
        with self._lock:
            return self._total_bytes_locked()

    def _total_bytes_locked(self) -> float:
        return sum(entry.nbytes for entry in self._entries.values())

    def pins(self, key: Hashable) -> int:
        with self._lock:
            entry = self._entries.get(key)
            return entry.pins if entry is not None else 0

    def acquire(self, key: Hashable):
        """Look up and pin; returns the payload on a hit, None on a miss
        (the caller should decode and :meth:`insert`)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            entry.pins += 1
            self._entries.move_to_end(key)
            return entry.payload

    def insert(self, key: Hashable, payload, nbytes: float) -> None:
        """Add a decoded payload, pinned once for the inserting reader
        (pair with :meth:`release`)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # raced with another reader of the same segment; share it
                entry.pins += 1
                self._entries.move_to_end(key)
                return
            self._entries[key] = _Entry(payload, float(nbytes), 1)
            self._evict()

    def release(self, key: Hashable) -> None:
        """Drop one pin; over-budget unpinned entries become evictable."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            entry.pins = max(0, entry.pins - 1)
            self._evict()

    def invalidate(self, key: Hashable) -> None:
        """Remove an entry whose backing segment was deleted (table
        rewrite); not counted as an eviction."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _evict(self) -> None:
        # callers hold self._lock
        while self._total_bytes_locked() > self.budget_bytes:
            victim = None
            for key, entry in self._entries.items():  # LRU order
                if entry.pins == 0:
                    victim = key
                    break
            if victim is None:
                return  # everything pinned; over budget until release
            del self._entries[victim]
            self.evictions += 1

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "resident_bytes": self._total_bytes_locked(),
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
