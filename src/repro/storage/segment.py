"""Columnar segment encoding, zone maps, and pruning decisions.

A *segment* is one immutable chunk of a table partition: up to
``ClusterConfig.segment_rows`` consecutive rows in insert order. Both
storage back ends chunk identically, so a table loaded the same way has
the same segment boundaries — and therefore the same zone maps, the same
pruning decisions and the same charged scan bytes — whether it lives in
memory or on disk.

The on-disk encoding keeps columns of uniform scalar type (and
uniform-shape VECTOR/MATRIX columns) as raw numpy buffers; anything else
(NULLs, strings, mixed types, labeled vectors, arbitrary-precision ints)
falls back to a pickled column. Decoding is *exact*: every value round
trips to an equal object of the same Python type, which is what lets
disk mode and spill files preserve the bit-identical-results contract.

File layout::

    RSEG1\\n | column payloads ... | pickled footer | footer length (8B LE)

The footer carries the row count and, per column, the encoding, payload
length, tensor shape, min/max over comparable non-null values and the
null count — the zone map used for pruning.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.cluster import row_bytes
from ..types.labeled import DEFAULT_LABEL
from ..types.tensor import Matrix, Vector

SEGMENT_MAGIC = b"RSEG1\n"
#: pinned pickle protocol so segment files are stable across interpreters
_PICKLE_PROTOCOL = 4
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: comparison operators a zone map can prune on
PRUNABLE_OPS = ("=", "<", ">", "<=", ">=")


@dataclass(frozen=True)
class ZoneMap:
    """Per-segment, per-column summary: min/max over comparable non-null
    values (None when the column holds no comparable values) plus the
    null count."""

    lo: Optional[object]
    hi: Optional[object]
    null_count: int
    row_count: int


def compute_zone(values: Sequence) -> ZoneMap:
    """The zone map of one column chunk. Values that do not admit a
    total order under Python comparison (tensors, mixed str/number
    columns) yield ``lo = hi = None`` and never prune."""
    null_count = 0
    non_null = []
    for value in values:
        if value is None:
            null_count += 1
        else:
            non_null.append(value)
    lo = hi = None
    if non_null:
        try:
            lo = min(non_null)
            hi = max(non_null)
        except TypeError:
            lo = hi = None
    return ZoneMap(lo, hi, null_count, len(values))


def compute_zones(rows: Sequence[tuple], width: int) -> List[ZoneMap]:
    """Zone maps for every column of a row chunk."""
    if not rows:
        return [ZoneMap(None, None, 0, 0) for _ in range(width)]
    return [compute_zone(column) for column in zip(*rows)]


def zone_excludes(zone: ZoneMap, op: str, literal) -> bool:
    """True when ``column <op> literal`` cannot hold for any row of the
    segment, so the whole segment may be skipped. Conservative: any
    uncertainty (no min/max, incomparable literal) keeps the segment."""
    if zone.row_count == 0:
        return True
    if zone.null_count == zone.row_count:
        # every value is NULL; comparisons with NULL never match
        return True
    if zone.lo is None or zone.hi is None:
        return False
    try:
        if op == "=":
            return bool(literal < zone.lo) or bool(literal > zone.hi)
        if op == "<":
            return not bool(zone.lo < literal)
        if op == "<=":
            return not bool(zone.lo <= literal)
        if op == ">":
            return not bool(zone.hi > literal)
        if op == ">=":
            return not bool(zone.hi >= literal)
    except TypeError:
        return False
    return False


def segment_pruned(segment, predicates: Sequence[Tuple[int, str, object]]) -> bool:
    """Whether a conjunction of ``(column position, op, literal)``
    predicates excludes every row of ``segment``."""
    for position, op, literal in predicates:
        zone = segment.zone(position)
        if zone is not None and zone_excludes(zone, op, literal):
            return True
    return False


def chunk_offsets(count: int, segment_rows: int) -> Iterator[Tuple[int, int]]:
    """Consecutive ``[start, stop)`` chunk bounds covering ``count``
    rows; the shared segmentation rule of both storage back ends."""
    step = max(1, int(segment_rows))
    for start in range(0, count, step):
        yield start, min(start + step, count)


# -- column codec -----------------------------------------------------------


def _encoding_for(values: Sequence) -> Tuple[str, Optional[tuple]]:
    kinds = {type(value) for value in values}
    if kinds == {float}:
        return "f8", None
    if kinds == {bool}:
        return "b1", None
    if kinds == {int}:
        if all(_INT64_MIN <= value <= _INT64_MAX for value in values):
            return "i8", None
        return "obj", None
    if kinds == {Vector}:
        length = values[0].length
        if all(
            value.label == DEFAULT_LABEL and value.length == length
            for value in values
        ):
            return "vec", (len(values), length)
        return "obj", None
    if kinds == {Matrix}:
        shape = values[0].shape
        if all(value.shape == shape for value in values):
            return "mat", (len(values),) + shape
        return "obj", None
    return "obj", None


def _encode_column(encoding: str, shape: Optional[tuple], values: Sequence) -> bytes:
    if encoding == "f8":
        return np.asarray(values, dtype=np.float64).tobytes()
    if encoding == "i8":
        return np.asarray(values, dtype=np.int64).tobytes()
    if encoding == "b1":
        return np.asarray(values, dtype=np.bool_).tobytes()
    if encoding == "vec":
        stacked = np.stack([value.data for value in values])
        return np.ascontiguousarray(stacked, dtype=np.float64).tobytes()
    if encoding == "mat":
        stacked = np.stack([value.data for value in values])
        return np.ascontiguousarray(stacked, dtype=np.float64).tobytes()
    return pickle.dumps(list(values), protocol=_PICKLE_PROTOCOL)


def _decode_column(meta: dict, data: bytes, rows: int) -> List:
    encoding = meta["encoding"]
    if encoding == "f8":
        return np.frombuffer(data, dtype=np.float64).tolist()
    if encoding == "i8":
        return np.frombuffer(data, dtype=np.int64).tolist()
    if encoding == "b1":
        return np.frombuffer(data, dtype=np.bool_).tolist()
    if encoding == "vec":
        array = np.frombuffer(data, dtype=np.float64).reshape(meta["shape"]).copy()
        return [Vector(array[i]) for i in range(rows)]
    if encoding == "mat":
        array = np.frombuffer(data, dtype=np.float64).reshape(meta["shape"]).copy()
        return [Matrix(array[i]) for i in range(rows)]
    return pickle.loads(data)


def encode_segment(rows: Sequence[tuple], width: int) -> Tuple[bytes, dict]:
    """Serialize a row chunk; returns ``(blob, footer)`` where the
    footer holds the per-column encodings and zone maps."""
    columns = list(zip(*rows)) if rows else [() for _ in range(width)]
    payloads: List[bytes] = []
    metas: List[dict] = []
    for values in columns:
        encoding, shape = _encoding_for(values) if rows else ("obj", None)
        payload = _encode_column(encoding, shape, values)
        zone = compute_zone(values)
        metas.append(
            {
                "encoding": encoding,
                "shape": shape,
                "length": len(payload),
                "lo": zone.lo,
                "hi": zone.hi,
                "nulls": zone.null_count,
            }
        )
        payloads.append(payload)
    footer = {"rows": len(rows), "width": width, "columns": metas}
    footer_bytes = pickle.dumps(footer, protocol=_PICKLE_PROTOCOL)
    blob = (
        SEGMENT_MAGIC
        + b"".join(payloads)
        + footer_bytes
        + struct.pack("<Q", len(footer_bytes))
    )
    return blob, footer


def decode_segment(blob: bytes) -> List[tuple]:
    """Exact inverse of :func:`encode_segment`."""
    if not blob.startswith(SEGMENT_MAGIC):
        raise ValueError("not a segment file (bad magic)")
    (footer_length,) = struct.unpack("<Q", blob[-8:])
    footer = pickle.loads(blob[-8 - footer_length : -8])
    rows = footer["rows"]
    offset = len(SEGMENT_MAGIC)
    columns: List[List] = []
    for meta in footer["columns"]:
        payload = blob[offset : offset + meta["length"]]
        offset += meta["length"]
        columns.append(_decode_column(meta, payload, rows))
    if rows == 0:
        return []
    return list(zip(*columns))


def write_segment_file(
    path: str,
    rows: Sequence[tuple],
    width: int,
    injector=None,
    durable: bool = True,
) -> dict:
    """Write one segment file. ``durable`` (the default, used for sealed
    base-table segments) goes through the crash-atomic
    :func:`~repro.storage.durable.atomic_write` path — temp file, fsync,
    ``os.replace`` — and counts as one durability barrier when an
    ``injector`` is armed. Spill files pass ``durable=False``: they are
    scratch state recomputed after any crash, and they are written from
    parallel partition tasks, so routing them through the barrier
    counter would make crash points scheduling-dependent."""
    from .durable import atomic_write

    blob, footer = encode_segment(rows, width)
    if durable:
        atomic_write(path, blob, injector=injector)
    else:
        with open(path, "wb") as handle:
            handle.write(blob)
    return footer


def read_segment_file(path: str) -> List[tuple]:
    with open(path, "rb") as handle:
        return decode_segment(handle.read())


# -- in-memory segment view -------------------------------------------------


class MemorySegment:
    """A logical segment over an in-memory row chunk: same zone maps and
    byte accounting as a sealed disk segment, no file behind it. Used
    for memory-mode tables and for the not-yet-sealed tail of a
    disk-mode partition."""

    __slots__ = ("rows", "width", "_sizes", "_total", "_zones")

    def __init__(self, rows: Sequence[tuple], width: int):
        self.rows = list(rows)
        self.width = width
        self._sizes: Optional[List[float]] = None
        self._total: Optional[float] = None
        self._zones: Optional[List[ZoneMap]] = None

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def sizes(self) -> List[float]:
        if self._sizes is None:
            self._sizes = [row_bytes(row) for row in self.rows]
        return self._sizes

    @property
    def total_bytes(self) -> float:
        if self._total is None:
            self._total = sum(self.sizes())
        return self._total

    def zone(self, position: int) -> Optional[ZoneMap]:
        if self._zones is None:
            self._zones = compute_zones(self.rows, self.width)
        if position >= len(self._zones):
            return None
        return self._zones[position]

    def read(self, pool=None) -> Tuple[List[tuple], List[float], Optional[str]]:
        """Rows, per-row serialized sizes, and the buffer-pool outcome
        (always None: memory segments never touch the pool)."""
        return self.rows, self.sizes(), None
