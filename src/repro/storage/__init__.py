"""Out-of-core storage subsystem: columnar segment files, zone maps, a
budgeted buffer pool, and the disk-backed partitioned table.

Tables live behind one of two back ends selected by
``ClusterConfig.storage_mode``:

* ``"memory"`` — :class:`~repro.engine.storage.PartitionedTable` keeps
  partitions as Python row lists (the original seed behaviour), chunked
  into logical :class:`MemorySegment` views for zone-map pruning;
* ``"disk"`` — :class:`DiskPartitionedTable` seals the same insert-order
  chunks into immutable columnar segment files (raw numpy buffers for
  uniform numeric/vector/matrix columns, a pickled fallback otherwise,
  plus a footer carrying row count, per-column min/max and null counts)
  and reads them back through a :class:`BufferPool` with LRU-with-pins
  eviction.

Both back ends expose the same ``segments(slot)`` abstraction with
identical chunk boundaries and identical serialized-byte accounting, so
scans, zone-map pruning decisions and spill triggers charge bit-identical
simulated costs in either mode (see ``docs/STORAGE.md``).
"""

from .bufferpool import BufferPool
from .disk import DiskPartitionedTable, DiskSegment
from .durable import (
    TMP_SUFFIX,
    DurableFile,
    atomic_write,
    durable_read,
    sweep_temp_files,
)
from .engine import STORAGE_MODES, StorageEngine
from .segment import (
    SEGMENT_MAGIC,
    MemorySegment,
    ZoneMap,
    chunk_offsets,
    compute_zone,
    compute_zones,
    decode_segment,
    encode_segment,
    read_segment_file,
    segment_pruned,
    write_segment_file,
    zone_excludes,
)

from .wal import (
    CHECKPOINT_FILE,
    WAL_FILE,
    WAL_MAGIC,
    DurabilityManager,
    WriteAheadLog,
    has_existing_state,
    read_wal,
    recover_database,
    truncate_torn_tail,
)

__all__ = [
    "BufferPool",
    "DiskPartitionedTable",
    "DiskSegment",
    "STORAGE_MODES",
    "StorageEngine",
    "TMP_SUFFIX",
    "DurableFile",
    "atomic_write",
    "durable_read",
    "sweep_temp_files",
    "CHECKPOINT_FILE",
    "WAL_FILE",
    "WAL_MAGIC",
    "DurabilityManager",
    "WriteAheadLog",
    "has_existing_state",
    "read_wal",
    "recover_database",
    "truncate_torn_tail",
    "SEGMENT_MAGIC",
    "MemorySegment",
    "ZoneMap",
    "chunk_offsets",
    "compute_zone",
    "compute_zones",
    "decode_segment",
    "encode_segment",
    "read_segment_file",
    "segment_pruned",
    "write_segment_file",
    "zone_excludes",
]
