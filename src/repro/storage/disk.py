"""Disk-backed partitioned table storage.

Mirrors :class:`repro.engine.storage.PartitionedTable`'s API (same slot
selection, same insert-order chunking into ``segment_rows`` chunks) but
seals every full chunk into an immutable columnar segment file and keeps
only the partial tail chunk in memory. Scans decode sealed segments back
through the owning :class:`~repro.storage.engine.StorageEngine`'s buffer
pool.

Because the chunk boundaries, zone maps and per-row serialized sizes are
identical to the memory back end's logical segments, every simulated
charge (scan bytes, pruning decisions, spill triggers) is bit-identical
across ``storage_mode in ("memory", "disk")``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..catalog import Schema
from ..engine.cluster import row_bytes, stable_hash
from ..errors import ExecutionError
from .segment import (
    MemorySegment,
    ZoneMap,
    read_segment_file,
    write_segment_file,
)


class DiskSegment:
    """One sealed, immutable columnar segment file.

    The zone maps and per-row serialized sizes are computed at seal time
    and kept in memory (they are the scan's pruning/charging metadata);
    only the row payload lives on disk and is decoded on demand through
    the buffer pool.
    """

    __slots__ = ("path", "row_count", "width", "_zones", "_sizes", "_total")

    def __init__(self, path: str, rows: Sequence[tuple], width: int, injector=None):
        self.path = path
        self.row_count = len(rows)
        self.width = width
        seed = MemorySegment(rows, width)
        self._sizes = seed.sizes()
        self._total = seed.total_bytes
        self._zones: List[ZoneMap] = [seed.zone(i) for i in range(width)]
        # sealing is crash-atomic (temp file + fsync + os.replace): a
        # crash mid-seal leaves the final name absent, never torn
        write_segment_file(path, rows, width, injector=injector)

    def sizes(self) -> List[float]:
        return self._sizes

    @property
    def total_bytes(self) -> float:
        return self._total

    def zone(self, position: int) -> Optional[ZoneMap]:
        if position >= len(self._zones):
            return None
        return self._zones[position]

    def read(self, pool=None) -> Tuple[List[tuple], List[float], Optional[str]]:
        """Decode the segment's rows, going through the buffer pool when
        one is supplied; the third element reports ``"hit"``/``"miss"``."""
        if pool is None:
            return read_segment_file(self.path), self._sizes, None
        payload = pool.acquire(self.path)
        if payload is not None:
            pool.release(self.path)
            return payload, self._sizes, "hit"
        rows = read_segment_file(self.path)
        pool.insert(self.path, rows, self._total)
        pool.release(self.path)
        return rows, self._sizes, "miss"

    def unlink(self, pool=None) -> None:
        if pool is not None:
            pool.invalidate(self.path)
        try:
            os.unlink(self.path)
        except OSError:
            pass


class DiskPartitionedTable:
    """Base-table storage laid out as sealed columnar segment files plus
    an in-memory tail buffer per partition."""

    def __init__(
        self,
        schema: Schema,
        slots: int,
        partition_by: Optional[Sequence[str]] = None,
        engine=None,
        name: str = "table",
        segment_rows: int = 4096,
    ):
        if engine is None:
            raise ExecutionError(
                "DiskPartitionedTable requires a StorageEngine "
                "(segment files need a home directory and buffer pool)"
            )
        self.schema = schema
        self.slots = slots
        self.engine = engine
        self.name = name
        self.segment_rows = max(1, int(segment_rows))
        #: column names the table is hash-partitioned on (None = round robin)
        self.partition_by = list(partition_by) if partition_by else None
        self._key_positions: Optional[List[int]] = None
        if self.partition_by:
            self._key_positions = []
            for column_name in self.partition_by:
                position = schema.index_of(column_name)
                if position is None:
                    raise ExecutionError(
                        f"cannot partition on unknown column {column_name!r}"
                    )
                self._key_positions.append(position)
        self._sealed: List[List[DiskSegment]] = [[] for _ in range(slots)]
        self._tails: List[List[tuple]] = [[] for _ in range(slots)]
        self._next = 0
        self._version = 0
        self._segment_cache: Dict[int, Tuple[int, list]] = {}

    @property
    def width(self) -> int:
        return len(self.schema.types)

    @property
    def row_count(self) -> int:
        sealed = sum(
            segment.row_count for slot in self._sealed for segment in slot
        )
        return sealed + sum(len(tail) for tail in self._tails)

    # -- mutation -----------------------------------------------------------

    def insert(self, row: Sequence) -> None:
        values = tuple(row)
        if self._key_positions is None:
            slot = self._next % self.slots
            self._next += 1
        else:
            key = tuple(values[i] for i in self._key_positions)
            slot = stable_hash(key) % self.slots
        self._tails[slot].append(values)
        self._seal_full_chunks(slot)
        self._version += 1

    def insert_many(self, rows: Iterable[Sequence]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def _seal_full_chunks(self, slot: int) -> None:
        tail = self._tails[slot]
        while len(tail) >= self.segment_rows:
            chunk = tail[: self.segment_rows]
            del tail[: self.segment_rows]
            path = self.engine.allocate_segment_path(self.name)
            self._sealed[slot].append(
                DiskSegment(
                    path, chunk, self.width, injector=self.engine.injector
                )
            )

    def _drop_sealed(self, slot: int) -> None:
        pool = self.engine.buffer_pool
        for segment in self._sealed[slot]:
            segment.unlink(pool)
        self._sealed[slot] = []

    def truncate(self) -> None:
        for slot in range(self.slots):
            self._drop_sealed(slot)
            self._tails[slot] = []
        self._next = 0
        self._version += 1

    def mutated(self) -> None:
        self._version += 1

    def replace_partition(self, slot: int, rows: Sequence[tuple]) -> None:
        """Rewrite one partition (DELETE): the old immutable segments
        are dropped and the surviving rows are re-sealed with the shared
        insert-order chunking rule."""
        self._drop_sealed(slot)
        self._tails[slot] = [tuple(row) for row in rows]
        self._seal_full_chunks(slot)
        self._version += 1

    # -- reads --------------------------------------------------------------

    def segments(self, slot: int) -> list:
        """Sealed segments plus the in-memory tail chunk, cached until
        the next mutation. Chunk boundaries match the memory back end."""
        cached = self._segment_cache.get(slot)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        segments: list = list(self._sealed[slot])
        tail = self._tails[slot]
        if tail:
            segments.append(MemorySegment(tail, self.width))
        self._segment_cache[slot] = (self._version, segments)
        return segments

    def partition_rows(self, slot: int) -> List[tuple]:
        """Decoded rows of one partition (bypasses the buffer pool:
        maintenance reads — stats, persistence — are not scans)."""
        out: List[tuple] = []
        for segment in self._sealed[slot]:
            out.extend(segment.read(None)[0])
        out.extend(self._tails[slot])
        return out

    def all_rows(self) -> List[tuple]:
        out: List[tuple] = []
        for slot in range(self.slots):
            out.extend(self.partition_rows(slot))
        return out

    def total_bytes(self) -> float:
        total = sum(
            segment.total_bytes for slot in self._sealed for segment in slot
        )
        return total + sum(
            row_bytes(row) for tail in self._tails for row in tail
        )
