"""Write-ahead logging and crash recovery.

The durability subsystem (``ClusterConfig.durability_mode = "wal"``)
keeps two artifacts in ``ClusterConfig.data_dir``:

* ``wal.log`` — the write-ahead log. Every committed DDL/DML operation
  appends one checksummed, length-prefixed, fsynced record *after* the
  in-memory mutation succeeds and *before* the call returns — returning
  is the acknowledgement, so an acknowledged statement is durable by
  definition.
* ``checkpoint.db`` — the latest atomic checkpoint (the
  :mod:`repro.persist` snapshot format written via
  :func:`~repro.storage.durable.atomic_write`). ``Database.checkpoint``
  (or ``save`` onto the checkpoint path) truncates the WAL back to a
  bare header once the snapshot is durable.

Record framing on disk::

    RWAL1\\n | record ... record
    record := <u32 payload length LE> <u32 CRC32(payload) LE> <payload>

The payload is a pickled plain-data dict (see
``Database._apply_wal_record`` for the record kinds). Replay walks the
frames and stops at the first record whose length or CRC does not hold
— a *torn tail* left by a crash mid-append — truncating the file back
to the last good frame. A header that is itself torn truncates to an
empty log; bytes that are not a prefix of a WAL at all raise
:class:`~repro.errors.SnapshotCorruptError`.

Recovery (:func:`recover_database`) = load the checkpoint (if any),
replay the surviving WAL records in commit order, resume appending.
Because replay runs the same code paths as the original statements on
the same cluster shape, recovered rows, statistics and catalog version
are bit-identical to the acknowledged prefix of the original session.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import DurabilityError, ReproError, SnapshotCorruptError
from .durable import DurableFile, atomic_write, durable_read, sweep_temp_files

WAL_MAGIC = b"RWAL1\n"
_FRAME = struct.Struct("<II")
#: pinned protocol so WAL files are stable across interpreters
_PICKLE_PROTOCOL = 4

CHECKPOINT_FILE = "checkpoint.db"
WAL_FILE = "wal.log"


def encode_record(record: dict) -> bytes:
    payload = pickle.dumps(record, protocol=_PICKLE_PROTOCOL)
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def read_wal(path: str, injector=None) -> Tuple[List[dict], int, bool]:
    """Decode a WAL file: ``(records, good_offset, torn)``.

    ``good_offset`` is the byte offset just past the last intact record
    (always at least the header length for a well-formed file); ``torn``
    reports whether trailing bytes after it failed validation and should
    be truncated away.
    """
    blob = durable_read(path, injector)
    if not blob:
        return [], 0, False
    if not blob.startswith(WAL_MAGIC):
        if WAL_MAGIC.startswith(blob):
            # a crash mid-header: nothing was ever logged
            return [], 0, True
        raise SnapshotCorruptError("not a repro WAL file", path=path, offset=0)
    records: List[dict] = []
    offset = len(WAL_MAGIC)
    size = len(blob)
    while offset < size:
        if offset + _FRAME.size > size:
            return records, offset, True
        length, crc = _FRAME.unpack_from(blob, offset)
        payload = blob[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return records, offset, True
        try:
            records.append(pickle.loads(payload))
        except Exception:
            # CRC held but the payload does not decode — treat as torn
            # rather than guessing at the damage
            return records, offset, True
        offset += _FRAME.size + length
    return records, offset, False


def truncate_torn_tail(path: str, offset: int) -> None:
    """Durably truncate a WAL back to its last intact record."""
    with open(path, "r+b") as handle:
        handle.truncate(offset)
        handle.flush()
        os.fsync(handle.fileno())


class WriteAheadLog:
    """The append side of the log. One durability barrier per record.

    ``config_record`` (a ``{"kind": "config", ...}`` dict) is planted as
    the log's first record whenever the log starts empty, *in the same
    fsync as the header*: the cluster shape must be recoverable from the
    WAL alone — without it, a database that crashed before its first
    checkpoint would replay onto the default shape and lose the
    bit-identical partition layout.
    """

    def __init__(self, path: str, injector=None, config_record=None):
        self.path = path
        self.injector = injector
        self.config_record = config_record
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        self._file = DurableFile(path, injector=injector)
        if size == 0:
            # one barrier for header (+ config record when given): a
            # crash here leaves a torn header/torn first record, which
            # replay treats as an empty log
            blob = WAL_MAGIC
            if config_record is not None:
                blob += encode_record(config_record)
            self._file.append(blob)
        elif size == len(WAL_MAGIC) and config_record is not None:
            # bare header (a pre-recovery truncation left it): plant
            # the config record before any statement lands
            self._file.append(encode_record(config_record))

    @property
    def size_bytes(self) -> int:
        return self._file.tell()

    def append(self, record: dict) -> None:
        self._file.append(encode_record(record))

    def reset(self) -> None:
        """Truncate back to a header plus config record (after a
        checkpoint made the logged history redundant). Atomic: a crash
        mid-reset leaves either the full old log or the fresh header."""
        blob = WAL_MAGIC
        if self.config_record is not None:
            blob += encode_record(self.config_record)
        self._file.close()
        try:
            atomic_write(self.path, blob, injector=self.injector)
        finally:
            # reopen even if the reset crashed mid-way so a surviving
            # process ("enospc" kind) can keep appending
            self._file = DurableFile(self.path, injector=self.injector)

    def close(self) -> None:
        self._file.close()


class DurabilityManager:
    """Owns one database's durability artifacts and commit log.

    Constructed by :class:`~repro.db.Database` when
    ``durability_mode="wal"``. In the normal (``attach=True``) path it
    opens the WAL immediately and refuses a ``data_dir`` that already
    holds a database — recovering one is an explicit
    ``Database.restore(data_dir)`` / ``Database.open(config)``, never an
    accident. During recovery the manager starts detached (replayed
    records must not be re-logged) and :meth:`resume` attaches it once
    replay is complete.
    """

    def __init__(self, db, attach: bool = True):
        config = db.config
        if not config.data_dir:
            raise ReproError(
                "durability_mode='wal' requires ClusterConfig.data_dir "
                "(the directory holding wal.log and checkpoint.db)"
            )
        self.db = db
        self.data_dir = os.path.abspath(config.data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.checkpoint_path = os.path.join(self.data_dir, CHECKPOINT_FILE)
        self.wal_path = os.path.join(self.data_dir, WAL_FILE)
        self.injector = db.storage.injector
        #: the WAL's first record: the cluster shape, so recovery can
        #: rebuild the same partition layout without a checkpoint
        self.config_record = {"kind": "config", "config": db.config}
        self._wal: Optional[WriteAheadLog] = None
        #: records appended this session (not counting replayed history)
        self.records_logged = 0
        #: records replayed by the recovery that produced this database
        self.records_replayed = 0
        self.checkpoints_taken = 0
        if attach:
            if has_existing_state(self.data_dir):
                raise ReproError(
                    f"data_dir {self.data_dir!r} already holds a database "
                    "(checkpoint or non-empty WAL); recover it with "
                    "Database.restore(data_dir) instead of constructing "
                    "a fresh Database over it"
                )
            self._wal = WriteAheadLog(
                self.wal_path,
                injector=self.injector,
                config_record=self.config_record,
            )

    @property
    def active(self) -> bool:
        return self._wal is not None

    def resume(self, replayed: int = 0) -> None:
        """Attach after recovery: reopen the WAL for appending."""
        self.records_replayed = replayed
        self._wal = WriteAheadLog(
            self.wal_path,
            injector=self.injector,
            config_record=self.config_record,
        )

    def log(self, record: dict) -> None:
        """Append one committed operation. An ``OSError`` (ENOSPC, real
        I/O failure) surfaces as a structured
        :class:`~repro.errors.DurabilityError`: the statement stays
        applied in memory but was **not** acknowledged as durable."""
        if self._wal is None:
            return
        try:
            self._wal.append(record)
        except OSError as exc:
            raise DurabilityError(
                f"WAL append to {self.wal_path!r} failed; the statement "
                "is applied in memory but NOT durable"
            ) from exc
        self.records_logged += 1

    def on_checkpoint(self, path: str) -> None:
        """Called after a successful ``Database.save(path)``: when the
        snapshot landed on this manager's checkpoint path, the WAL
        history is redundant and is truncated."""
        if self._wal is None:
            return
        if os.path.abspath(path) != self.checkpoint_path:
            return
        try:
            self._wal.reset()
        except OSError as exc:
            raise DurabilityError(
                f"WAL truncation of {self.wal_path!r} after checkpoint failed"
            ) from exc
        self.checkpoints_taken += 1
        self.records_logged = 0

    def wal_bytes(self) -> int:
        try:
            return os.path.getsize(self.wal_path)
        except OSError:
            return 0

    def stats(self) -> Dict[str, object]:
        """The ``durability`` block of ``QueryService.stats()``."""
        return {
            "mode": "wal",
            "data_dir": self.data_dir,
            "active": self.active,
            "wal_bytes": self.wal_bytes(),
            "records_logged": self.records_logged,
            "records_replayed": self.records_replayed,
            "checkpoints_taken": self.checkpoints_taken,
            "has_checkpoint": os.path.exists(self.checkpoint_path),
        }

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


def has_existing_state(data_dir: str) -> bool:
    """Does ``data_dir`` already hold a recoverable database — a
    checkpoint, or a WAL with at least one committed statement? (The
    config record a fresh WAL plants does not count: a database that
    never acknowledged anything is safely re-creatable.)"""
    if os.path.exists(os.path.join(data_dir, CHECKPOINT_FILE)):
        return True
    wal_path = os.path.join(data_dir, WAL_FILE)
    if not os.path.exists(wal_path):
        return False
    try:
        records, _offset, _torn = read_wal(wal_path)
    except SnapshotCorruptError:
        # unidentifiable bytes under the WAL name: refuse to build a
        # fresh database over them
        return True
    return any(record.get("kind") != "config" for record in records)


def recover_database(data_dir: str, config=None):
    """Rebuild a database from its durability directory: checkpoint (if
    any), then WAL replay, then resume logging. ``config`` overrides the
    saved cluster shape exactly like ``Database.restore(file, config)``
    (note that replaying onto a *different* slot count re-deals
    partitions, which forfeits bit-identical per-slot summation order —
    same contract as a plain restore)."""
    from ..config import ClusterConfig
    from ..db import Database
    from ..faults import FaultInjector
    from ..persist import _effective_config, apply_snapshot, load_snapshot

    data_dir = os.path.abspath(data_dir)
    checkpoint_path = os.path.join(data_dir, CHECKPOINT_FILE)
    wal_path = os.path.join(data_dir, WAL_FILE)

    # the recovery-side injector (bit-rot on read) is armed by the
    # caller's override config — one shared read counter across the
    # checkpoint read (#1) and the WAL read (#2). It is separate from
    # the recovered database's own injector, whose barrier/read
    # counters start fresh for the new session.
    probe_plan = _effective_config(ClusterConfig(), config).fault_plan
    injector = (
        FaultInjector(probe_plan)
        if probe_plan is not None and probe_plan.storage_enabled
        else None
    )

    payload = None
    if os.path.exists(checkpoint_path):
        payload = load_snapshot(checkpoint_path, injector=injector)
    records: List[dict] = []
    if os.path.exists(wal_path):
        records, offset, torn = read_wal(wal_path, injector=injector)
        if torn:
            truncate_torn_tail(wal_path, offset)
    # the saved cluster shape: the checkpoint's config when one exists,
    # else the config record a fresh WAL plants as its first record —
    # either way replay happens on the original partition layout
    if payload is not None:
        base = payload["config"]
    else:
        base = next(
            (
                record["config"]
                for record in records
                if record.get("kind") == "config"
            ),
            ClusterConfig(),
        )
    records = [
        record for record in records if record.get("kind") != "config"
    ]
    effective = _effective_config(base, config).with_updates(
        durability_mode="wal", data_dir=data_dir
    )
    db = Database(effective, _recovery=True)
    if payload is not None:
        apply_snapshot(db, payload)
    last_version = None
    for record in records:
        db._apply_wal_record(record)
        last_version = record.get("catalog_version", last_version)
    if last_version is not None:
        db.catalog.version = max(db.catalog.version, last_version)
    sweep_temp_files(data_dir)
    db._durability.resume(replayed=len(records))
    return db
