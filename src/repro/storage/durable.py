"""The durable-I/O shim: every byte the durability subsystem promises
to keep crosses this module.

Three primitives, shared by the write-ahead log, the checkpoint writer
and the columnar segment writer:

* :class:`DurableFile` — an append handle whose :meth:`~DurableFile.append`
  is one *durability barrier*: write, flush, ``fsync``. Used by the WAL.
* :func:`atomic_write` — full-file replacement that is atomic under
  crash: write to a same-directory temp file, ``fsync`` it, ``os.replace``
  onto the final name, ``fsync`` the directory. A crash at any point
  leaves either the old file or the new file under the final name,
  never a torn hybrid. Used by checkpoints, WAL truncation and sealed
  segment files.
* :func:`durable_read` — a whole-file read of a durability artifact,
  the hook point for bit-rot injection.

Fault injection threads through the optional
:class:`~repro.faults.FaultInjector`: each barrier first asks
:meth:`~repro.faults.FaultInjector.storage_barrier` whether it is the
configured crash point, and reacts by dying before writing
(``"crash"``), durably writing a deterministic short prefix and then
dying (``"torn"``), or raising ``OSError(ENOSPC)`` (``"enospc"``).
"Dying" means raising :class:`~repro.errors.SimulatedCrashError`, which
derives from ``BaseException`` precisely so no recovery or serving
layer can swallow it.
"""

from __future__ import annotations

import errno
import os
import tempfile
from typing import Optional

from ..errors import SimulatedCrashError

#: suffix of in-flight temp files; recovery sweeps leftovers away
TMP_SUFFIX = ".reprotmp"


def fsync_dir(directory: str) -> None:
    """Make a directory entry change (``os.replace``) durable. Silently
    a no-op on platforms that refuse to open directories."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _consult(injector, path: str) -> Optional[str]:
    """Ask the injector what happens at this barrier; raise immediately
    for the non-torn kinds (nothing has been written yet)."""
    if injector is None:
        return None
    action = injector.storage_barrier()
    if action == "crash":
        raise SimulatedCrashError(f"injected crash at durability barrier ({path})")
    if action == "enospc":
        raise OSError(errno.ENOSPC, "injected ENOSPC at durability barrier", path)
    return action  # None or "torn"


class DurableFile:
    """An append-only file handle with explicit durability barriers."""

    def __init__(self, path: str, injector=None):
        self.path = path
        self.injector = injector
        self._handle = open(path, "ab")

    def append(self, data: bytes) -> None:
        """Append ``data`` and make it durable — one durability barrier.
        When the barrier is an injected torn write, a deterministic
        strict prefix of ``data`` is made durable before the simulated
        crash, leaving exactly the torn tail a real power cut leaves."""
        action = _consult(self.injector, self.path)
        if action == "torn":
            cut = self.injector.torn_length(len(data))
            self._handle.write(data[:cut])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise SimulatedCrashError(
                f"injected torn write ({cut}/{len(data)} bytes) at "
                f"durability barrier ({self.path})"
            )
        self._handle.write(data)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def tell(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - best effort
            pass


def atomic_write(path: str, data: bytes, injector=None, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data`` (one durability barrier
    when ``fsync`` is set). A crash anywhere — including an injected
    torn write — leaves only a stray ``*.reprotmp`` file behind; the
    final name always holds either the previous contents or ``data``."""
    action = _consult(injector, path) if fsync else None
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=TMP_SUFFIX, dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            if action == "torn":
                cut = injector.torn_length(len(data))
                handle.write(data[:cut])
                handle.flush()
                os.fsync(handle.fileno())
                raise SimulatedCrashError(
                    f"injected torn write ({cut}/{len(data)} bytes) at "
                    f"durability barrier ({path})"
                )
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except SimulatedCrashError:
        # the "process" died: leave the torn temp file on disk, exactly
        # as a real crash would (recovery sweeps *.reprotmp files)
        raise
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(directory)


def durable_read(path: str, injector=None) -> bytes:
    """Read a durability artifact (checkpoint, WAL) whole; the injector
    hook point for deterministic bit-rot."""
    with open(path, "rb") as handle:
        data = handle.read()
    if injector is not None:
        data = injector.corrupt_read(data)
    return data


def sweep_temp_files(directory: str) -> int:
    """Remove stray ``*.reprotmp`` files a crash left behind; returns
    how many were removed. Called by recovery before replay."""
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if name.endswith(TMP_SUFFIX):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:  # pragma: no cover - best effort
                pass
    return removed
