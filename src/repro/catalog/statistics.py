"""Table statistics for the cost-based optimizer.

Beyond the classical row counts and per-column distinct counts, the
catalog records *observed tensor dimensions* for columns whose VECTOR or
MATRIX type left dimensions unspecified in the schema. This lets the
optimizer cost plans over ``VECTOR[]`` data nearly as accurately as over
fully declared types (section 4.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..types import DataType, Matrix, MatrixType, Vector, VectorType


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    distinct: Optional[int] = None
    #: observed average vector length / matrix dims for under-specified types
    observed_length: Optional[int] = None
    observed_rows: Optional[int] = None
    observed_cols: Optional[int] = None

    def refine_type(self, declared: DataType) -> DataType:
        """The declared type with unknown dimensions filled from observed
        statistics, when available."""
        if isinstance(declared, VectorType) and declared.length is None:
            if self.observed_length is not None:
                return VectorType(self.observed_length)
        if isinstance(declared, MatrixType):
            rows, cols = declared.rows, declared.cols
            if rows is None and self.observed_rows is not None:
                rows = self.observed_rows
            if cols is None and self.observed_cols is not None:
                cols = self.observed_cols
            if (rows, cols) != (declared.rows, declared.cols):
                return MatrixType(rows, cols)
        return declared


@dataclass
class TableStats:
    """Statistics for a table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns.setdefault(name.lower(), ColumnStats())

    def distinct(self, name: str) -> Optional[int]:
        stats = self.columns.get(name.lower())
        return stats.distinct if stats else None


def collect_stats(schema, rows) -> TableStats:
    """Scan rows once and build statistics: row count, per-column distinct
    counts (for scalar columns), and observed tensor dimensions."""
    stats = TableStats(row_count=len(rows))
    for position, column in enumerate(schema):
        col_stats = stats.column(column.name)
        declared = column.data_type
        if isinstance(declared, (VectorType, MatrixType)):
            lengths = set()
            shapes = set()
            for row in rows:
                value = row[position]
                if isinstance(value, Vector):
                    lengths.add(value.length)
                elif isinstance(value, Matrix):
                    shapes.add(value.shape)
            if len(lengths) == 1:
                col_stats.observed_length = lengths.pop()
            if len(shapes) == 1:
                rows_dim, cols_dim = shapes.pop()
                col_stats.observed_rows = rows_dim
                col_stats.observed_cols = cols_dim
        else:
            values = set()
            hashable = True
            for row in rows:
                try:
                    values.add(row[position])
                except TypeError:
                    hashable = False
                    break
            if hashable:
                col_stats.distinct = len(values)
    return stats
