"""Table statistics for the cost-based optimizer.

Beyond the classical row counts and per-column distinct counts, the
catalog records *observed tensor dimensions* for columns whose VECTOR or
MATRIX type left dimensions unspecified in the schema. This lets the
optimizer cost plans over ``VECTOR[]`` data nearly as accurately as over
fully declared types (section 4.1 of the paper).

Statistics must track DML: every INSERT / INSERT ... SELECT / CTAS /
DELETE refreshes them (``Database._refresh_stats``), since stale row
counts or tensor dims would silently mis-cost every subsequent plan.
Appends are handled incrementally — :func:`collect_stats` keeps its
value/shape accumulator sets on the stats objects, and
:func:`append_stats` folds the new rows in without rescanning the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..types import DataType, Matrix, MatrixType, Vector, VectorType


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    distinct: Optional[int] = None
    #: observed average vector length / matrix dims for under-specified types
    observed_length: Optional[int] = None
    observed_rows: Optional[int] = None
    observed_cols: Optional[int] = None
    #: accumulators carried for incremental refresh on append; ``None``
    #: means "not tracked" (e.g. an unhashable scalar column)
    value_set: Optional[Set] = field(default=None, repr=False, compare=False)
    length_set: Optional[Set[int]] = field(default=None, repr=False, compare=False)
    shape_set: Optional[Set[tuple]] = field(default=None, repr=False, compare=False)

    def refine_type(self, declared: DataType) -> DataType:
        """The declared type with unknown dimensions filled from observed
        statistics, when available."""
        if isinstance(declared, VectorType) and declared.length is None:
            if self.observed_length is not None:
                return VectorType(self.observed_length)
        if isinstance(declared, MatrixType):
            rows, cols = declared.rows, declared.cols
            if rows is None and self.observed_rows is not None:
                rows = self.observed_rows
            if cols is None and self.observed_cols is not None:
                cols = self.observed_cols
            if (rows, cols) != (declared.rows, declared.cols):
                return MatrixType(rows, cols)
        return declared


@dataclass
class TableStats:
    """Statistics for a table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    #: True when the per-column accumulator sets are populated, so
    #: :func:`append_stats` can refresh incrementally
    incremental: bool = field(default=False, repr=False, compare=False)

    def column(self, name: str) -> ColumnStats:
        return self.columns.setdefault(name.lower(), ColumnStats())

    def distinct(self, name: str) -> Optional[int]:
        stats = self.columns.get(name.lower())
        return stats.distinct if stats else None


def _tensor_observed(col_stats: ColumnStats) -> None:
    """Re-derive the observed dims from the accumulator sets: dims are
    only trusted when every value agrees on them."""
    lengths = col_stats.length_set or set()
    shapes = col_stats.shape_set or set()
    col_stats.observed_length = (
        next(iter(lengths)) if len(lengths) == 1 else None
    )
    if len(shapes) == 1:
        col_stats.observed_rows, col_stats.observed_cols = next(iter(shapes))
    else:
        col_stats.observed_rows = col_stats.observed_cols = None


def collect_stats(schema, rows) -> TableStats:
    """Scan rows once and build statistics: row count, per-column distinct
    counts (for scalar columns), and observed tensor dimensions."""
    stats = TableStats(row_count=len(rows), incremental=True)
    for position, column in enumerate(schema):
        col_stats = stats.column(column.name)
        declared = column.data_type
        if isinstance(declared, (VectorType, MatrixType)):
            col_stats.length_set = set()
            col_stats.shape_set = set()
            for row in rows:
                value = row[position]
                if isinstance(value, Vector):
                    col_stats.length_set.add(value.length)
                elif isinstance(value, Matrix):
                    col_stats.shape_set.add(value.shape)
            _tensor_observed(col_stats)
        else:
            values: Optional[Set] = set()
            for row in rows:
                try:
                    values.add(row[position])
                except TypeError:
                    values = None
                    break
            col_stats.value_set = values
            col_stats.distinct = len(values) if values is not None else None
    return stats


def append_stats(stats: TableStats, schema, rows) -> bool:
    """Fold appended ``rows`` into existing ``stats`` without rescanning
    the table. Returns False when the stats carry no accumulators (e.g.
    hand-built fixtures) — callers then fall back to a full
    :func:`collect_stats` pass."""
    if not stats.incremental:
        return False
    rows = list(rows)
    for position, column in enumerate(schema):
        col_stats = stats.column(column.name)
        declared = column.data_type
        if isinstance(declared, (VectorType, MatrixType)):
            if col_stats.length_set is None or col_stats.shape_set is None:
                return False
            for row in rows:
                value = row[position]
                if isinstance(value, Vector):
                    col_stats.length_set.add(value.length)
                elif isinstance(value, Matrix):
                    col_stats.shape_set.add(value.shape)
            _tensor_observed(col_stats)
        elif col_stats.value_set is not None:
            for row in rows:
                try:
                    col_stats.value_set.add(row[position])
                except TypeError:
                    col_stats.value_set = None
                    col_stats.distinct = None
                    break
            if col_stats.value_set is not None:
                col_stats.distinct = len(col_stats.value_set)
        # value_set is None: the column is (or became) unhashable —
        # distinct stays unknown, appends cannot change that
    stats.row_count += len(rows)
    return True
