"""Table statistics for the cost-based optimizer.

Beyond the classical row counts and per-column distinct counts, the
catalog records *observed tensor dimensions* for columns whose VECTOR or
MATRIX type left dimensions unspecified in the schema. This lets the
optimizer cost plans over ``VECTOR[]`` data nearly as accurately as over
fully declared types (section 4.1 of the paper).

Statistics must track DML: every INSERT / INSERT ... SELECT / CTAS /
DELETE refreshes them (``Database._refresh_stats``), since stale row
counts or tensor dims would silently mis-cost every subsequent plan.
Appends are handled incrementally — :func:`collect_stats` keeps its
value/shape accumulator sets on the stats objects, and
:func:`append_stats` folds the new rows in without rescanning the table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..types import DataType, Matrix, MatrixType, Vector, VectorType


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    distinct: Optional[int] = None
    #: observed average vector length / matrix dims for under-specified types
    observed_length: Optional[int] = None
    observed_rows: Optional[int] = None
    observed_cols: Optional[int] = None
    #: accumulators carried for incremental refresh on append; ``None``
    #: means "not tracked" (e.g. an unhashable scalar column)
    value_set: Optional[Set] = field(default=None, repr=False, compare=False)
    length_set: Optional[Set[int]] = field(default=None, repr=False, compare=False)
    shape_set: Optional[Set[tuple]] = field(default=None, repr=False, compare=False)

    def refine_type(self, declared: DataType) -> DataType:
        """The declared type with unknown dimensions filled from observed
        statistics, when available."""
        if isinstance(declared, VectorType) and declared.length is None:
            if self.observed_length is not None:
                return VectorType(self.observed_length)
        if isinstance(declared, MatrixType):
            rows, cols = declared.rows, declared.cols
            if rows is None and self.observed_rows is not None:
                rows = self.observed_rows
            if cols is None and self.observed_cols is not None:
                cols = self.observed_cols
            if (rows, cols) != (declared.rows, declared.cols):
                return MatrixType(rows, cols)
        return declared


@dataclass
class TableStats:
    """Statistics for a table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    #: True when the per-column accumulator sets are populated, so
    #: :func:`append_stats` can refresh incrementally
    incremental: bool = field(default=False, repr=False, compare=False)

    def column(self, name: str) -> ColumnStats:
        return self.columns.setdefault(name.lower(), ColumnStats())

    def distinct(self, name: str) -> Optional[int]:
        stats = self.columns.get(name.lower())
        return stats.distinct if stats else None


def _tensor_observed(col_stats: ColumnStats) -> None:
    """Re-derive the observed dims from the accumulator sets: dims are
    only trusted when every value agrees on them."""
    lengths = col_stats.length_set or set()
    shapes = col_stats.shape_set or set()
    col_stats.observed_length = (
        next(iter(lengths)) if len(lengths) == 1 else None
    )
    if len(shapes) == 1:
        col_stats.observed_rows, col_stats.observed_cols = next(iter(shapes))
    else:
        col_stats.observed_rows = col_stats.observed_cols = None


def collect_stats(schema, rows) -> TableStats:
    """Scan rows once and build statistics: row count, per-column distinct
    counts (for scalar columns), and observed tensor dimensions."""
    stats = TableStats(row_count=len(rows), incremental=True)
    for position, column in enumerate(schema):
        col_stats = stats.column(column.name)
        declared = column.data_type
        if isinstance(declared, (VectorType, MatrixType)):
            col_stats.length_set = set()
            col_stats.shape_set = set()
            for row in rows:
                value = row[position]
                if isinstance(value, Vector):
                    col_stats.length_set.add(value.length)
                elif isinstance(value, Matrix):
                    col_stats.shape_set.add(value.shape)
            _tensor_observed(col_stats)
        else:
            values: Optional[Set] = set()
            for row in rows:
                try:
                    values.add(row[position])
                except TypeError:
                    values = None
                    break
            col_stats.value_set = values
            col_stats.distinct = len(values) if values is not None else None
    return stats


def append_stats(stats: TableStats, schema, rows) -> bool:
    """Fold appended ``rows`` into existing ``stats`` without rescanning
    the table. Returns False when the stats carry no accumulators (e.g.
    hand-built fixtures) — callers then fall back to a full
    :func:`collect_stats` pass."""
    if not stats.incremental:
        return False
    rows = list(rows)
    for position, column in enumerate(schema):
        col_stats = stats.column(column.name)
        declared = column.data_type
        if isinstance(declared, (VectorType, MatrixType)):
            if col_stats.length_set is None or col_stats.shape_set is None:
                return False
            for row in rows:
                value = row[position]
                if isinstance(value, Vector):
                    col_stats.length_set.add(value.length)
                elif isinstance(value, Matrix):
                    col_stats.shape_set.add(value.shape)
            _tensor_observed(col_stats)
        elif col_stats.value_set is not None:
            for row in rows:
                try:
                    col_stats.value_set.add(row[position])
                except TypeError:
                    col_stats.value_set = None
                    col_stats.distinct = None
                    break
            if col_stats.value_set is not None:
                col_stats.distinct = len(col_stats.value_set)
        # value_set is None: the column is (or became) unhashable —
        # distinct stays unknown, appends cannot change that
    stats.row_count += len(rows)
    return True


# -- cardinality feedback ---------------------------------------------------
#
# After every completed statement the database folds the observed
# per-operator actual row counts (``Result.metrics.trace``) back into the
# structures below. Estimates consult them through the cost model, so a
# predicate the static statistics mis-costed on the first run is planned
# from its *observed* selectivity on the next one, and repeated workloads
# converge toward q-error 1. Feedback never changes result rows — only
# estimates.


def predicate_fingerprint(expr, scope: str = "") -> Optional[Tuple]:
    """A normalized, compile-independent fingerprint of a predicate.

    Column references are rendered by (lower-cased) column *name* rather
    than by the binder's per-statement column ids, so the same SQL text
    compiled twice fingerprints identically. Commutative structure is
    normalized: the two sides of ``AND``/``OR`` and of an equality are
    sorted, so ``a = b`` and ``b = a`` (and reordered conjuncts) share a
    fingerprint. ``scope`` qualifies the fingerprint with the table a
    filter sits directly above, keeping same-named columns of different
    tables apart.

    Returns ``None`` for predicates containing query parameters: their
    selectivity depends on the bound value, so one binding's observation
    would mislead the next — and recording them would churn the feedback
    version (and through it the plan cache) on every prepared-statement
    execution.
    """

    rendered = _render_expr(expr)
    if rendered is None:
        return None
    return ("pred", scope.lower(), rendered)


def join_fingerprint(equi_pairs, residual=None) -> Optional[Tuple]:
    """A normalized fingerprint for a join: the set of equi-key pairs
    (each pair orientation-insensitive, the set order-insensitive) plus
    the residual predicate, if any. Returns ``None`` when any component
    contains a query parameter."""

    pairs = []
    for left, right in equi_pairs:
        left_r = _render_expr(left)
        right_r = _render_expr(right)
        if left_r is None or right_r is None:
            return None
        pairs.append(tuple(sorted((left_r, right_r))))
    residual_r: Tuple = ()
    if residual is not None:
        rendered = _render_expr(residual)
        if rendered is None:
            return None
        residual_r = rendered
    return ("join", tuple(sorted(pairs)), residual_r)


_COMMUTATIVE_OPS = {"=", "<>", "!=", "+", "*", "and", "or"}


def _render_expr(expr) -> Optional[Tuple]:
    """Duck-typed structural rendering of a ``TypedExpr`` tree (avoids a
    catalog -> plan import cycle). Stable across compilations of the same
    SQL text; ``None`` marks a parameter somewhere in the tree."""

    cls = type(expr).__name__
    if cls == "ParamExpr":
        return None
    if cls == "ColumnVar":
        name = (getattr(expr, "name", "") or "").lower()
        return ("col", name if name else f"#{getattr(expr, 'column_id', '?')}")
    if cls == "LiteralExpr":
        return ("lit", repr(getattr(expr, "value", None)))
    parts = [cls]
    op = getattr(expr, "op", None)
    if op is not None:
        parts.append(str(op).lower())
    if hasattr(expr, "negated"):
        parts.append(bool(expr.negated))
    builtin = getattr(expr, "builtin", None)
    if builtin is not None:
        parts.append(getattr(builtin, "name", type(builtin).__name__))
    children = []
    for child in expr.children():
        rendered = _render_expr(child)
        if rendered is None:
            return None
        children.append(rendered)
    if op is not None and str(op).lower() in _COMMUTATIVE_OPS:
        children.sort()
    return tuple(parts) + tuple(children)


#: Observed values within this relative factor of the stored one do not
#: update the store (and so do not bump the feedback version): repeated
#: identical workloads converge to a stable version and the plan cache
#: keeps hitting.
_FEEDBACK_TOLERANCE = 0.10

#: Estimates already within this q-error of the observation are "right
#: enough": recording them would add nothing and would invalidate cached
#: plans for no benefit.
_RECORD_THRESHOLD = 1.5


@dataclass
class _FeedbackEntry:
    """One learned value plus how often it was (re-)observed."""

    value: float
    observations: int = 1


class FeedbackStatistics:
    """Observed-cardinality overrides learned from completed queries.

    Three stores, all keyed independently of any single compilation:

    - ``row_counts``: table name -> actual rows delivered by an unpruned
      scan (normally agrees with ``TableStats.row_count``; diverges only
      for hand-built fixtures whose stats were never refreshed);
    - ``selectivities``: :func:`predicate_fingerprint` -> observed
      ``rows_out / rows_in`` of a filter;
    - ``join_selectivities``: :func:`join_fingerprint` -> observed
      ``rows_out / (left_rows * right_rows)`` of a join.

    ``version`` increases monotonically whenever a recording *changes*
    the store (new key, or value drifted beyond ``_FEEDBACK_TOLERANCE``);
    the service's plan-cache key includes it, so cached plans built from
    stale estimates are invalidated exactly when new knowledge arrives —
    and a converged workload stops invalidating. All methods are
    thread-safe: concurrent SELECTs absorb feedback under shared
    admission.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._version = 0
        self._row_counts: Dict[str, _FeedbackEntry] = {}
        self._selectivities: Dict[Tuple, _FeedbackEntry] = {}
        self._join_selectivities: Dict[Tuple, _FeedbackEntry] = {}

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    # -- recording (executor side) -----------------------------------------

    def record_scan_rows(self, table: str, rows: float) -> bool:
        return self._record(self._row_counts, table.lower(), float(rows))

    def record_selectivity(self, fingerprint: Tuple, observed: float) -> bool:
        return self._record(self._selectivities, fingerprint, observed)

    def record_join_selectivity(self, fingerprint: Tuple, observed: float) -> bool:
        return self._record(self._join_selectivities, fingerprint, observed)

    def _record(self, store: Dict, key, value: float) -> bool:
        with self._lock:
            entry = store.get(key)
            if entry is not None:
                entry.observations += 1
                if _within_tolerance(entry.value, value):
                    return False
                entry.value = value
            else:
                store[key] = _FeedbackEntry(value)
            self._version += 1
            return True

    # -- lookup (estimator side) -------------------------------------------

    def scan_rows(self, table: str) -> Optional[float]:
        with self._lock:
            entry = self._row_counts.get(table.lower())
            return entry.value if entry else None

    def selectivity(self, fingerprint: Optional[Tuple]) -> Optional[float]:
        if fingerprint is None:
            return None
        with self._lock:
            entry = self._selectivities.get(fingerprint)
            return entry.value if entry else None

    def join_selectivity(self, fingerprint: Optional[Tuple]) -> Optional[float]:
        if fingerprint is None:
            return None
        with self._lock:
            entry = self._join_selectivities.get(fingerprint)
            return entry.value if entry else None

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Forget everything learned (bumps the version so cached plans
        built on the learned estimates are invalidated too)."""
        with self._lock:
            if self._row_counts or self._selectivities or self._join_selectivities:
                self._row_counts.clear()
                self._selectivities.clear()
                self._join_selectivities.clear()
                self._version += 1

    def snapshot(self) -> Dict[str, object]:
        """Counters for ``QueryService.stats()`` / debugging."""
        with self._lock:
            return {
                "version": self._version,
                "tables": len(self._row_counts),
                "predicates": len(self._selectivities),
                "joins": len(self._join_selectivities),
                "observations": sum(
                    entry.observations
                    for store in (
                        self._row_counts,
                        self._selectivities,
                        self._join_selectivities,
                    )
                    for entry in store.values()
                ),
            }


def _within_tolerance(stored: float, observed: float) -> bool:
    if stored == observed:
        return True
    baseline = max(abs(stored), abs(observed), 1e-12)
    return abs(stored - observed) / baseline <= _FEEDBACK_TOLERANCE


def estimate_needs_feedback(estimated: float, observed: float) -> bool:
    """True when the estimate was wrong enough (q-error beyond the
    recording threshold) that learning the observation is worthwhile."""
    est = max(float(estimated), 1.0)
    act = max(float(observed), 1.0)
    return max(est / act, act / est) > _RECORD_THRESHOLD
