"""System catalog: schemas, tables, views and statistics."""

from .catalog import Catalog, TableEntry, ViewEntry
from .schema import Column, Schema
from .statistics import ColumnStats, TableStats, append_stats, collect_stats

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "Schema",
    "TableEntry",
    "TableStats",
    "ViewEntry",
    "append_stats",
    "collect_stats",
]
