"""System catalog: schemas, tables, views and statistics."""

from .catalog import Catalog, TableEntry, ViewEntry
from .schema import Column, Schema
from .statistics import (
    ColumnStats,
    FeedbackStatistics,
    TableStats,
    append_stats,
    collect_stats,
    join_fingerprint,
    predicate_fingerprint,
)

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "FeedbackStatistics",
    "Schema",
    "TableEntry",
    "TableStats",
    "ViewEntry",
    "append_stats",
    "collect_stats",
    "join_fingerprint",
    "predicate_fingerprint",
]
