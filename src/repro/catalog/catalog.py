"""The system catalog: tables, views, and their statistics.

Table payloads (partitioned tuple storage) live in the engine; the catalog
holds schemas and metadata and maps names to storage. Views are stored as
parsed query ASTs and expanded during binding, exactly like traditional
SQL views. Materialized views (``repro/views/``) additionally carry
stored state; the catalog tracks their base-table dependency graph so
``DROP TABLE`` cannot silently orphan them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CatalogError, DependentViewError
from .schema import Schema
from .statistics import TableStats


@dataclass
class TableEntry:
    """A base table: schema plus a reference to partitioned storage."""

    name: str
    schema: Schema
    storage: object = None  # engine.storage.PartitionedTable once loaded
    stats: TableStats = field(default_factory=TableStats)


@dataclass
class ViewEntry:
    """A view: the defining query's AST plus optional renamed columns."""

    name: str
    query: object  # sql.ast.SelectStatement
    column_names: Optional[List[str]] = None


class Catalog:
    """Name-to-object mapping with case-insensitive SQL semantics.

    The catalog carries a monotonically increasing :attr:`version`,
    bumped on every DDL change and on every statistics refresh. Cached
    query plans are keyed on it: any version change invalidates them
    (plans bake in resolved names, refined types, and size estimates).

    Two finer-grained counters let caches invalidate selectively instead
    of flushing on every data load:

    * :attr:`ddl_version` moves only when the *set of relations* changes
      (create/drop of a table or view) — name resolution can change, so
      every cached plan is suspect;
    * per-table versions (:meth:`table_version`) move when one table's
      data or statistics change — only plans that read that table are
      suspect.
    """

    def __init__(self):
        self._tables: Dict[str, TableEntry] = {}
        self._views: Dict[str, ViewEntry] = {}
        #: materialized views (repro.views.MaterializedView objects),
        #: keyed like every other relation
        self._matviews: Dict[str, object] = {}
        self.version = 0
        self.ddl_version = 0
        self._table_versions: Dict[str, int] = {}

    def bump_version(self) -> int:
        """Advance the catalog version (DDL or statistics change);
        returns the new version."""
        self.version += 1
        return self.version

    def bump_ddl(self) -> int:
        """Advance the DDL version (the set of relations changed)."""
        self.ddl_version += 1
        return self.ddl_version

    # -- per-table data versions -----------------------------------------

    def bump_table(self, name: str) -> int:
        """Advance one table's data version (DML or statistics refresh);
        cached plans referencing the table are stale, others are not."""
        key = name.lower()
        self._table_versions[key] = self._table_versions.get(key, 0) + 1
        return self._table_versions[key]

    def table_version(self, name: str) -> int:
        return self._table_versions.get(name.lower(), 0)

    # -- tables -----------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> TableEntry:
        key = name.lower()
        if self.has_relation(name):
            raise CatalogError(f"relation {name!r} already exists")
        entry = TableEntry(name=name, schema=schema)
        self._tables[key] = entry
        self.bump_version()
        self.bump_ddl()
        return entry

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table named {name!r}")
        dependents = self.views_depending_on(name)
        if dependents:
            raise DependentViewError(
                f"cannot drop table {name!r}: materialized view(s) "
                f"{', '.join(repr(v) for v in dependents)} depend on it "
                f"(drop them first)",
                table=name,
                views=dependents,
            )
        del self._tables[key]
        self._table_versions.pop(key, None)
        self.bump_version()
        self.bump_ddl()

    def table(self, name: str) -> TableEntry:
        entry = self._tables.get(name.lower())
        if entry is None:
            raise CatalogError(f"no table named {name!r}")
        return entry

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[TableEntry]:
        return list(self._tables.values())

    # -- views ------------------------------------------------------------

    def create_view(
        self, name: str, query, column_names: Optional[List[str]] = None
    ) -> ViewEntry:
        key = name.lower()
        if self.has_relation(name):
            raise CatalogError(f"relation {name!r} already exists")
        entry = ViewEntry(name=name, query=query, column_names=column_names)
        self._views[key] = entry
        self.bump_version()
        self.bump_ddl()
        return entry

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"no view named {name!r}")
        del self._views[key]
        self.bump_version()
        self.bump_ddl()

    def view(self, name: str) -> Optional[ViewEntry]:
        return self._views.get(name.lower())

    # -- materialized views ------------------------------------------------

    def create_materialized_view(self, view) -> None:
        """Register one :class:`repro.views.MaterializedView` under its
        name (which must be free across tables, views, and materialized
        views alike)."""
        if self.has_relation(view.name):
            raise CatalogError(f"relation {view.name!r} already exists")
        self._matviews[view.name.lower()] = view
        self.bump_version()
        self.bump_ddl()

    def drop_materialized_view(self, name: str, if_exists: bool = False):
        key = name.lower()
        view = self._matviews.pop(key, None)
        if view is None:
            if if_exists:
                return None
            raise CatalogError(f"no materialized view named {name!r}")
        self.bump_version()
        self.bump_ddl()
        return view

    def materialized_view(self, name: str):
        return self._matviews.get(name.lower())

    def materialized_views(self) -> List[object]:
        return list(self._matviews.values())

    def views_depending_on(self, table: str) -> List[str]:
        """Names of materialized views that read ``table`` (registration
        order) — the dependency edges DROP TABLE refuses to cut."""
        key = table.lower()
        return [
            view.name
            for view in self._matviews.values()
            if key in view.base_tables
        ]

    def has_relation(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._views or key in self._matviews
