"""The system catalog: tables, views, and their statistics.

Table payloads (partitioned tuple storage) live in the engine; the catalog
holds schemas and metadata and maps names to storage. Views are stored as
parsed query ASTs and expanded during binding, exactly like traditional
SQL views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CatalogError
from .schema import Schema
from .statistics import TableStats


@dataclass
class TableEntry:
    """A base table: schema plus a reference to partitioned storage."""

    name: str
    schema: Schema
    storage: object = None  # engine.storage.PartitionedTable once loaded
    stats: TableStats = field(default_factory=TableStats)


@dataclass
class ViewEntry:
    """A view: the defining query's AST plus optional renamed columns."""

    name: str
    query: object  # sql.ast.SelectStatement
    column_names: Optional[List[str]] = None


class Catalog:
    """Name-to-object mapping with case-insensitive SQL semantics.

    The catalog carries a monotonically increasing :attr:`version`,
    bumped on every DDL change and on every statistics refresh. Cached
    query plans are keyed on it: any version change invalidates them
    (plans bake in resolved names, refined types, and size estimates).
    """

    def __init__(self):
        self._tables: Dict[str, TableEntry] = {}
        self._views: Dict[str, ViewEntry] = {}
        self.version = 0

    def bump_version(self) -> int:
        """Advance the catalog version (DDL or statistics change);
        returns the new version."""
        self.version += 1
        return self.version

    # -- tables -----------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> TableEntry:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {name!r} already exists")
        entry = TableEntry(name=name, schema=schema)
        self._tables[key] = entry
        self.bump_version()
        return entry

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]
        self.bump_version()

    def table(self, name: str) -> TableEntry:
        entry = self._tables.get(name.lower())
        if entry is None:
            raise CatalogError(f"no table named {name!r}")
        return entry

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[TableEntry]:
        return list(self._tables.values())

    # -- views ------------------------------------------------------------

    def create_view(
        self, name: str, query, column_names: Optional[List[str]] = None
    ) -> ViewEntry:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {name!r} already exists")
        entry = ViewEntry(name=name, query=query, column_names=column_names)
        self._views[key] = entry
        self.bump_version()
        return entry

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"no view named {name!r}")
        del self._views[key]
        self.bump_version()

    def view(self, name: str) -> Optional[ViewEntry]:
        return self._views.get(name.lower())

    def has_relation(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._views
