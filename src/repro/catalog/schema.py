"""Relational schemas: columns with (possibly tensor-typed) attributes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import CatalogError
from ..types import DataType, parse_type


@dataclass(frozen=True)
class Column:
    """One attribute of a relation."""

    name: str
    data_type: DataType

    def __repr__(self) -> str:
        return f"{self.name} {self.data_type!r}"


class Schema:
    """An ordered list of named, typed columns.

    Column lookup is case-insensitive, as in SQL. Schemas are immutable;
    operations that change the column list return new schemas.
    """

    def __init__(self, columns: Iterable[Union[Column, Tuple[str, object]]]):
        normalized: List[Column] = []
        for item in columns:
            if isinstance(item, Column):
                normalized.append(item)
            else:
                name, data_type = item
                if isinstance(data_type, str):
                    data_type = parse_type(data_type)
                normalized.append(Column(name, data_type))
        seen = set()
        for column in normalized:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(f"duplicate column name {column.name!r}")
            seen.add(key)
        self._columns = tuple(normalized)
        self._index = {column.name.lower(): i for i, column in enumerate(self._columns)}

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> List[str]:
        return [column.name for column in self._columns]

    @property
    def types(self) -> List[DataType]:
        return [column.data_type for column in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def index_of(self, name: str) -> Optional[int]:
        """Position of a column by case-insensitive name, or None."""
        return self._index.get(name.lower())

    def column(self, name: str) -> Column:
        index = self.index_of(name)
        if index is None:
            raise CatalogError(f"no column named {name!r} in schema {self!r}")
        return self._columns[index]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def rename(self, names: Sequence[str]) -> "Schema":
        """A copy of this schema with new column names (for CREATE VIEW
        column lists and AS aliases)."""
        if len(names) != len(self._columns):
            raise CatalogError(
                f"expected {len(self._columns)} column name(s), got {len(names)}"
            )
        return Schema(
            [Column(name, column.data_type) for name, column in zip(names, self._columns)]
        )

    def row_width_bytes(self) -> float:
        """Estimated width of one tuple, the quantity that makes a
        MATRIX[100000][100] attribute dominate plan cost (section 4.1)."""
        overhead = 16.0  # per-tuple header, as in a record-oriented store
        return overhead + sum(column.data_type.size_bytes() for column in self._columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __repr__(self) -> str:
        inner = ", ".join(repr(column) for column in self._columns)
        return f"Schema({inner})"
