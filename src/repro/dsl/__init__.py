"""A math-like API on top of the extended-SQL engine.

The paper's suggested direction (section 1): a DSL or TensorFlow-style
binding that translates linear algebra programs into database
computations. ``Session.matrix`` stores numpy arrays as distributed
tiles; expressions (``@``, ``+``, ``.T``, ``.gram()``, ...) build a lazy
graph that compiles to the paper's section 3.4 SQL.

    from repro.dsl import Session

    sess = Session(tile=64)
    X = sess.matrix(data)
    beta_lhs = X.gram()          # X.T @ X, lazily
    print(beta_lhs.to_numpy())
    print(sess.last_metrics.total_seconds)
"""

from .expr import ElementWise, Input, MatExpr, MatMul, Scale, Transpose
from .session import Session

__all__ = [
    "ElementWise",
    "Input",
    "MatExpr",
    "MatMul",
    "Scale",
    "Session",
    "Transpose",
]
