"""The DSL session: stores matrices as tiled tables, compiles expression
graphs to extended SQL, executes them on :class:`repro.Database`.

Every matrix is stored as the paper's section 3.4 representation::

    name (tileRow INTEGER, tileCol INTEGER, mat MATRIX[t][t])

Matrices are zero-padded up to a multiple of the tile size (the logical
shape is tracked on the expression and the padding is sliced away on
collect; zero padding is invariant under +, -, scaling, transpose and
matrix multiplication, so no result is affected).

Compilation materializes one intermediate table per operator with
``CREATE TABLE AS`` — exactly how a SQL programmer would stage the
paper's queries — and accumulates the simulated cluster time of every
statement into :attr:`Session.last_metrics`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

import numpy as np

from ..config import ClusterConfig
from ..db import Database
from ..engine import QueryMetrics
from ..errors import TypeCheckError
from .expr import ElementWise, Input, MatExpr, MatMul, Scale, Transpose


class Session:
    """Owns a database and a namespace of tiled matrices."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        tile: int = 64,
        database: Optional[Database] = None,
    ):
        if tile <= 0:
            raise ValueError(f"tile size must be positive, got {tile}")
        self.db = database or Database(config)
        self.tile = tile
        self.last_metrics = QueryMetrics()
        self._names = itertools.count(1)
        #: id(node) -> (node, table); the node reference keeps ids stable
        self._cache: Dict[int, tuple] = {}

    # -- data in ------------------------------------------------------------

    def matrix(self, array, name: Optional[str] = None) -> Input:
        """Store a dense numpy matrix as a tiled table and return the
        Input expression referencing it."""
        data = np.asarray(array, dtype=np.float64)
        if data.ndim != 2:
            raise TypeCheckError(f"expected a 2-d array, got {data.ndim}-d")
        table = name or f"_dsl_m{next(self._names)}"
        rows, cols = data.shape
        tile = self.tile
        padded = np.zeros(
            (-(-rows // tile) * tile, -(-cols // tile) * tile)
        )
        padded[:rows, :cols] = data
        self.db.execute(
            f"CREATE TABLE {table} (tileRow INTEGER, tileCol INTEGER, "
            f"mat MATRIX[{tile}][{tile}])"
        )
        tiles = []
        for ti in range(padded.shape[0] // tile):
            for tj in range(padded.shape[1] // tile):
                block = padded[ti * tile : (ti + 1) * tile, tj * tile : (tj + 1) * tile]
                tiles.append((ti + 1, tj + 1, block))
        self.db.load(table, tiles)
        return Input(self, (rows, cols), table)

    # -- compilation --------------------------------------------------------------

    def _fresh(self) -> str:
        return f"_dsl_t{next(self._names)}"

    def _execute(self, sql: str) -> None:
        result = self.db.execute(sql)
        self.last_metrics = self.last_metrics.merge(result.metrics)

    def _compile(self, node: MatExpr) -> str:
        """Materialize ``node`` as a tiled table; memoized per node so a
        shared subexpression runs once. The node itself is kept in the
        cache entry so its id() cannot be recycled by the allocator."""
        cached = self._cache.get(id(node))
        if cached is not None:
            return cached[1]
        table = self._lower(node)
        self._cache[id(node)] = (node, table)
        return table

    def _lower(self, node: MatExpr) -> str:
        if isinstance(node, Input):
            return node.table
        if isinstance(node, MatMul):
            left = self._compile(node.left)
            right = self._compile(node.right)
            out = self._fresh()
            self._execute(
                f"""CREATE TABLE {out} AS
                SELECT lhs.tileRow AS tileRow, rhs.tileCol AS tileCol,
                       SUM(matrix_multiply(lhs.mat, rhs.mat)) AS mat
                FROM {left} AS lhs, {right} AS rhs
                WHERE lhs.tileCol = rhs.tileRow
                GROUP BY lhs.tileRow, rhs.tileCol"""
            )
            return out
        if isinstance(node, Transpose):
            source = self._compile(node.operand)
            out = self._fresh()
            self._execute(
                f"""CREATE TABLE {out} AS
                SELECT s.tileCol AS tileRow, s.tileRow AS tileCol,
                       trans_matrix(s.mat) AS mat
                FROM {source} AS s"""
            )
            return out
        if isinstance(node, ElementWise):
            left = self._compile(node.left)
            right = self._compile(node.right)
            out = self._fresh()
            self._execute(
                f"""CREATE TABLE {out} AS
                SELECT a.tileRow AS tileRow, a.tileCol AS tileCol,
                       a.mat {node.op} b.mat AS mat
                FROM {left} AS a, {right} AS b
                WHERE a.tileRow = b.tileRow AND a.tileCol = b.tileCol"""
            )
            return out
        if isinstance(node, Scale):
            source = self._compile(node.operand)
            out = self._fresh()
            self._execute(
                f"""CREATE TABLE {out} AS
                SELECT s.tileRow AS tileRow, s.tileCol AS tileCol,
                       s.mat * {node.factor!r} AS mat
                FROM {source} AS s"""
            )
            return out
        raise TypeCheckError(f"cannot lower {type(node).__name__}")

    # -- execution -----------------------------------------------------------------

    def collect(self, node: MatExpr) -> np.ndarray:
        """Run the expression and assemble the (unpadded) numpy result."""
        table = self._compile(node)
        result = self.db.execute(
            f"SELECT tileRow, tileCol, mat FROM {table}"
        )
        self.last_metrics = self.last_metrics.merge(result.metrics)
        tile = self.tile
        rows, cols = node.shape
        padded = np.zeros((-(-rows // tile) * tile, -(-cols // tile) * tile))
        for tile_row, tile_col, block in result.rows:
            padded[
                (tile_row - 1) * tile : tile_row * tile,
                (tile_col - 1) * tile : tile_col * tile,
            ] = block.data
        return padded[:rows, :cols]

    def reduce_sum(self, node: MatExpr) -> float:
        table = self._compile(node)
        result = self.db.execute(f"SELECT SUM(sum_matrix(t.mat)) FROM {table} AS t")
        self.last_metrics = self.last_metrics.merge(result.metrics)
        value = result.scalar()
        return 0.0 if value is None else float(value)

    def reduce_frobenius(self, node: MatExpr) -> float:
        table = self._compile(node)
        result = self.db.execute(
            f"SELECT SUM(sum_matrix(t.mat * t.mat)) FROM {table} AS t"
        )
        self.last_metrics = self.last_metrics.merge(result.metrics)
        value = result.scalar()
        return float(value) ** 0.5 if value is not None else 0.0

    def reset_metrics(self) -> QueryMetrics:
        previous = self.last_metrics
        self.last_metrics = QueryMetrics()
        return previous
