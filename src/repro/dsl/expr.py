"""Lazy distributed-matrix expressions.

The paper's introduction argues that a math-like DSL or a
TensorFlow-style API "could itself exploit high-level linear algebra
transformations, and translate the computation to a database
computation — with the key benefit provided by a relational backend,
there is no need to implement a distributed linear algebra execution
engine from scratch."  This module is that layer: expressions over
distributed (tiled) matrices that compile to the extended SQL of
section 3.4 and execute on :class:`repro.Database`.

Shape checking happens at *graph construction* time, mirroring the SQL
layer's compile-time dimension checks.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import TypeCheckError

Shape = Tuple[int, int]


class MatExpr:
    """Base class of the lazy matrix expression graph."""

    shape: Shape

    def __init__(self, session, shape: Shape):
        self.session = session
        self.shape = (int(shape[0]), int(shape[1]))

    # -- operators ---------------------------------------------------------

    def __matmul__(self, other: "MatExpr") -> "MatExpr":
        other = self._coerce(other)
        if self.shape[1] != other.shape[0]:
            raise TypeCheckError(
                f"matmul: inner dimensions differ "
                f"({self.shape} @ {other.shape})"
            )
        return MatMul(self.session, self, other)

    def __add__(self, other) -> "MatExpr":
        return self._elementwise(other, "+")

    def __sub__(self, other) -> "MatExpr":
        return self._elementwise(other, "-")

    def __mul__(self, other) -> "MatExpr":
        if isinstance(other, (int, float)):
            return Scale(self.session, self, float(other))
        return self._elementwise(other, "*")

    def __rmul__(self, scalar) -> "MatExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return Scale(self.session, self, float(scalar))

    def __neg__(self) -> "MatExpr":
        return Scale(self.session, self, -1.0)

    def _elementwise(self, other, op: str) -> "MatExpr":
        other = self._coerce(other)
        if self.shape != other.shape:
            raise TypeCheckError(
                f"element-wise {op}: shapes differ ({self.shape} vs {other.shape})"
            )
        return ElementWise(self.session, self, other, op)

    def _coerce(self, other) -> "MatExpr":
        if isinstance(other, MatExpr):
            if other.session is not self.session:
                raise TypeCheckError("cannot mix matrices from different sessions")
            return other
        raise TypeCheckError(f"expected a matrix expression, got {type(other).__name__}")

    # -- structure ----------------------------------------------------------

    @property
    def T(self) -> "MatExpr":
        return Transpose(self.session, self)

    def gram(self) -> "MatExpr":
        """X.T @ X — the paper's Gram computation as one node."""
        return self.T @ self

    # -- reductions (eager scalars) -------------------------------------------

    def sum(self) -> float:
        return self.session.reduce_sum(self)

    def frobenius_norm(self) -> float:
        return self.session.reduce_frobenius(self)

    # -- execution ---------------------------------------------------------------

    def to_numpy(self):
        """Compile to SQL, execute on the database, assemble the result."""
        return self.session.collect(self)

    def children(self) -> Tuple["MatExpr", ...]:
        return ()

    def __repr__(self):
        return f"{type(self).__name__}{self.shape}"


class Input(MatExpr):
    """A matrix already stored as a tiled table."""

    def __init__(self, session, shape: Shape, table: str):
        super().__init__(session, shape)
        self.table = table

    def __repr__(self):
        return f"Input{self.shape}({self.table})"


class MatMul(MatExpr):
    def __init__(self, session, left: MatExpr, right: MatExpr):
        super().__init__(session, (left.shape[0], right.shape[1]))
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)


class Transpose(MatExpr):
    def __init__(self, session, operand: MatExpr):
        super().__init__(session, (operand.shape[1], operand.shape[0]))
        self.operand = operand

    def children(self):
        return (self.operand,)


class ElementWise(MatExpr):
    def __init__(self, session, left: MatExpr, right: MatExpr, op: str):
        super().__init__(session, left.shape)
        self.left = left
        self.right = right
        self.op = op

    def children(self):
        return (self.left, self.right)


class Scale(MatExpr):
    def __init__(self, session, operand: MatExpr, factor: float):
        super().__init__(session, operand.shape)
        self.operand = operand
        self.factor = factor

    def children(self):
        return (self.operand,)
