"""Cluster and cost-model configuration.

The paper's experiments ran on 10 Amazon EC2 m2.4xlarge machines (8 cores
each) under Hadoop. We reproduce that setting with a simulated
shared-nothing cluster: real tuples flow through the operators, and each
operator charges simulated time to virtual workers using the rates below.
The defaults are calibrated to a Java-on-Hadoop system of the 2016 era
(SimSQL); the comparator simulators override individual rates (e.g. SciDB
is a compiled C++ engine, so its per-tuple and streaming costs are lower).

All rates are per *core* unless stated otherwise; a "slot" is one core of
one machine, and partitions are placed on slots, which is what makes the
paper's 100-blocks-on-80-cores skew effect reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultPlan


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and speed of the simulated cluster."""

    machines: int = 10
    cores_per_machine: int = 8

    #: BLAS-3 floating point rate (matrix multiply, inverse, solve):
    #: large gemms reuse cache and run fast even in Java
    flop_rate: float = 2.0e9
    #: BLAS-1/2 rate (dot products, outer products, matrix-vector):
    #: memory-bound, roughly half the BLAS-3 rate
    blas1_rate: float = 1.0e9
    #: memory-streaming rate for element-wise work and aggregation
    stream_rate: float = 0.35e9
    #: fixed CPU cost per tuple per operator (the iterator-model overhead
    #: at the heart of the paper's tuple-vs-vector experiment)
    tuple_cpu_s: float = 0.5e-6
    #: network bandwidth per machine (1 Gbit/s)
    network_rate: float = 125.0e6
    #: sequential scan bandwidth per machine
    disk_rate: float = 100.0e6
    #: fixed startup overhead charged per MapReduce-style job (a shuffle
    #: boundary); this is why SimSQL trails SciDB at low dimensionality
    job_startup_s: float = 12.0
    #: RAM available per machine (m2.4xlarge has ~68 GB)
    worker_memory: float = 60.0e9
    #: when True, partitions are placed round-robin (ideal balance); when
    #: False, hash placement is used and skew emerges naturally
    balanced_placement: bool = False
    #: seed for any randomized placement decisions
    seed: int = 0
    #: interpreter back end: "batch" runs the columnar vectorized
    #: pipeline, "row" the original tuple-at-a-time loops. Both charge
    #: identical simulated costs and return identical rows (see
    #: docs/ENGINE.md); the knob only changes *real* wall-clock time.
    execution_mode: str = "batch"
    #: seeded deterministic fault injection (slot crashes, lost
    #: partitions, transient exchange errors, stragglers); None runs a
    #: healthy cluster. Faults perturb the simulated timeline only —
    #: result rows stay bit-identical (see docs/FAULTS.md).
    fault_plan: Optional["FaultPlan"] = None
    #: table storage back end: "memory" keeps partitions as Python row
    #: lists, "disk" lays them out as immutable columnar segment files
    #: read back through a budgeted buffer pool (see docs/STORAGE.md).
    #: Both back ends charge identical simulated costs and return
    #: identical rows; the knob changes where the bytes physically live.
    storage_mode: str = "memory"
    #: working-memory budget in bytes governing both the disk-mode
    #: buffer pool and the per-operator spill threshold (hash join
    #: build, aggregation state, exchange staging). None derives the
    #: default from ``memory_per_slot`` (half of it); spill decisions
    #: fire identically in both storage modes so simulated metrics stay
    #: comparable.
    buffer_pool_bytes: Optional[float] = None
    #: rows per columnar segment; each table partition is chunked into
    #: consecutive insert-order segments of this many rows (the zone-map
    #: pruning granule). Small values are useful in tests to force
    #: multi-segment partitions.
    segment_rows: int = 4096
    #: size of the real-thread worker pool the network serving layer
    #: (``repro.server``) drives the simulated cluster with; requests
    #: beyond it queue inside the server. Read-only statements admitted
    #: through the database's reader–writer gate genuinely overlap on
    #: these threads; DDL/DML takes the exclusive path.
    worker_threads: int = 8
    #: crash-safe durability: "off" keeps the historical behaviour (data
    #: lives in memory until an explicit ``save``); "wal" appends every
    #: committed DDL/DML statement to a checksummed, fsynced write-ahead
    #: log under ``data_dir`` and turns ``Database.save`` into an atomic
    #: checkpoint that truncates the log (see docs/DURABILITY.md).
    durability_mode: str = "off"
    #: home directory of the durability artifacts (``checkpoint.db`` +
    #: ``wal.log``); required when ``durability_mode="wal"``. Recover a
    #: crashed database with ``Database.restore(data_dir)`` (or
    #: ``Database.open(config)``), which replays the WAL on top of the
    #: latest checkpoint.
    data_dir: Optional[str] = None
    #: real threads used *inside* one statement to run independent
    #: partition tasks of each operator concurrently (scan/filter/join/
    #: aggregate partitions, exchange senders/receivers). ``1`` keeps
    #: the historical sequential interpreter; higher values dispatch
    #: partition tasks to a shared pool. Results and simulated
    #: :class:`QueryMetrics` are bit-identical at any setting — the
    #: per-task metric contexts are merged in deterministic partition
    #: order (see docs/ENGINE.md).
    intra_query_parallelism: int = 1
    #: cardinality feedback: "on" folds per-operator actual row counts
    #: from every completed statement back into the catalog's feedback
    #: statistics (scan row counts, filter/join selectivities keyed by a
    #: normalized predicate fingerprint), so the optimizer's estimates
    #: converge on repeated workloads; "off" plans from static
    #: statistics only. Feedback never changes result rows — only
    #: estimates, and through them plan choice (see docs/ENGINE.md,
    #: "Adaptive optimization").
    feedback_mode: str = "on"

    #: materialized-view maintenance policy: "eager" folds appended rows
    #: into incremental views (and recomputes full views) inside the
    #: mutating statement, so every view is always fresh; "deferred"
    #: moves the incremental fold to the next read and marks full views
    #: stale until an explicit REFRESH MATERIALIZED VIEW (stale views
    #: are skipped by the optimizer's view matching). Either way,
    #: answering from a view is bit-identical to rescanning
    #: (docs/VIEWS.md).
    view_refresh_mode: str = "eager"

    @property
    def effective_buffer_pool_bytes(self) -> float:
        """The working-memory budget actually enforced: the explicit
        ``buffer_pool_bytes`` when set, else half of ``memory_per_slot``."""
        if self.buffer_pool_bytes is not None:
            return float(self.buffer_pool_bytes)
        return self.memory_per_slot / 2.0

    @property
    def slots(self) -> int:
        """Total parallel execution slots (cores) in the cluster."""
        return self.machines * self.cores_per_machine

    @property
    def network_rate_per_slot(self) -> float:
        return self.network_rate / self.cores_per_machine

    @property
    def disk_rate_per_slot(self) -> float:
        return self.disk_rate / self.cores_per_machine

    @property
    def memory_per_slot(self) -> float:
        return self.worker_memory / self.cores_per_machine

    def with_updates(self, **kwargs) -> "ClusterConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


#: The paper's experimental cluster.
PAPER_CLUSTER = ClusterConfig()

#: A small configuration suitable for unit tests and examples.
TEST_CLUSTER = ClusterConfig(machines=2, cores_per_machine=2, job_startup_s=1.0)
