"""Admission control and the multi-tenant fair-share slot scheduler.

Admitted statements genuinely overlap in *process* time (the database's
reader–writer gate admits any number of concurrent reads, each on its
own executor), while the service layer multiplexes many logical clients
onto the simulated cluster in *simulated* time. The scheduler models
the simulated side as gang scheduling: the cluster's slots are
carved into ``max_concurrency`` equal gangs, one admitted query per
gang. A query's service demand on a gang is::

    startup_seconds  +  operator_seconds * max_concurrency

— per-job startup is coordinator-side and does not shrink with the gang,
while data-parallel operator work stretches linearly when it runs on
``slots / max_concurrency`` cores instead of all of them. Concurrency
therefore buys throughput exactly where a Hadoop-era system gains it:
overlapping the (large, fixed) per-job startup of one query with the
compute of others; total slot-seconds of operator work are conserved.

Admission control is a bounded FIFO room: when every gang is busy a
query waits in the admission queue (the wait shows up as
``queue_seconds`` in its metrics), and when the queue itself is full the
query is rejected immediately with :class:`ServiceOverloadedError` —
fail fast instead of building an unbounded backlog.

When a gang frees up, the next query is chosen **fairly across
tenants**: the waiting query whose session has consumed the fewest
slot-seconds so far goes first (ties broken FIFO). A tenant hammering
the service with heavy queries cannot starve a light one.

The scheduler is a discrete-event simulation over
:class:`~repro.engine.cluster.SlotTimeline`. Submissions must carry
non-decreasing arrival times (the closed-loop driver guarantees this;
interactive use just submits at the current clock).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from ..engine.cluster import SlotTimeline
from ..errors import ServiceOverloadedError


class Ticket:
    """One query's passage through admission and the slot timeline."""

    __slots__ = ("tenant", "arrival", "service_seconds", "seq", "start", "finish", "gang")

    def __init__(self, tenant: str, arrival: float, service_seconds: float, seq: int):
        self.tenant = tenant
        self.arrival = arrival
        self.service_seconds = service_seconds
        self.seq = seq
        self.start: Optional[float] = None
        self.finish: Optional[float] = None
        self.gang: Optional[int] = None

    @property
    def queue_seconds(self) -> float:
        if self.start is None:
            return 0.0
        return self.start - self.arrival

    def __repr__(self):
        return (
            f"Ticket(#{self.seq} {self.tenant!r} arrive={self.arrival:.3f} "
            f"start={self.start} finish={self.finish})"
        )


class SlotScheduler:
    """Fair-share gang scheduler with bounded admission."""

    def __init__(self, max_concurrency: int, queue_limit: int):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.timeline = SlotTimeline(max_concurrency)
        self.clock = 0.0
        self._seq = 0
        self._waiting: List[Ticket] = []
        self._running: Dict[int, Ticket] = {}
        self._backlog: Deque[Ticket] = deque()  # completed, not yet collected
        #: cumulative slot-seconds consumed per tenant (fair-share state)
        self.usage: Dict[str, float] = {}
        # counters
        self.admitted = 0
        self.rejected = 0
        self.queued = 0
        self.queue_peak = 0
        self.total_queue_seconds = 0.0
        # assigned last: from here on, every attribute write must hold
        # the lock (enforced by the lock-discipline lint, see
        # repro.service.locking)
        self._lock = threading.RLock()

    # -- public API --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._waiting)

    @property
    def in_flight(self) -> int:
        return len(self._running) + len(self._waiting)

    def submit(
        self, tenant: str, service_seconds: float, arrival: Optional[float] = None
    ) -> Ticket:
        """Admit (or queue, or reject) one query arriving at simulated
        time ``arrival`` (default: the current clock). Returns its
        ticket; ``start``/``finish`` are filled in once scheduled —
        immediately if a gang is idle."""
        with self._lock:
            if arrival is None:
                arrival = self.clock
            arrival = max(arrival, self.clock)
            self._advance(arrival)
            self.clock = arrival
            self._seq += 1
            ticket = Ticket(tenant, arrival, service_seconds, self._seq)
            gang = self.timeline.idle_gang(arrival) if not self._waiting else None
            if gang is not None:
                self._start(ticket, arrival, gang)
            elif len(self._waiting) >= self.queue_limit:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"admission queue full ({len(self._waiting)}/{self.queue_limit} "
                    f"waiting, {len(self._running)} running)",
                    queue_depth=len(self._waiting),
                    queue_limit=self.queue_limit,
                    retry_after_s=self.retry_after_estimate(arrival),
                )
            else:
                self._waiting.append(ticket)
                self.queued += 1
                self.queue_peak = max(self.queue_peak, len(self._waiting))
            self.admitted += 1
            return ticket

    def retry_after_estimate(self, now: Optional[float] = None) -> float:
        """A backoff hint for rejected clients: time until the next gang
        frees up, plus the waiting room's aggregate service demand
        spread over all gangs. A resubmission after this long sees a
        drained (or at least shorter) queue."""
        with self._lock:
            if now is None:
                now = self.clock
            next_free = max(0.0, self.timeline.earliest_free() - now)
            backlog = sum(t.service_seconds for t in self._waiting)
            return next_free + backlog / self.max_concurrency

    def next_completion(self) -> Optional[Ticket]:
        """The next query (by simulated finish time) to complete; frees
        its gang and fairly starts a waiting query. ``None`` when
        nothing is in flight."""
        with self._lock:
            if self._backlog:
                return self._backlog.popleft()
            ticket = self._pop_earliest_running()
            if ticket is None:
                return None
            self._dispatch_waiting()
            return ticket

    def drain(self) -> List[Ticket]:
        """Run the simulation until idle; completed tickets in order."""
        completed = []
        while True:
            ticket = self.next_completion()
            if ticket is None:
                return completed
            completed.append(ticket)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_concurrency": self.max_concurrency,
                "queue_limit": self.queue_limit,
                "admitted": self.admitted,
                "queued": self.queued,
                "rejected": self.rejected,
                "queue_depth": self.queue_depth,
                "queue_peak": self.queue_peak,
                "total_queue_seconds": self.total_queue_seconds,
                "clock": self.clock,
                "utilisation": self.timeline.utilisation(self.clock),
            }

    # -- internals ---------------------------------------------------------

    def _start(self, ticket: Ticket, when: float, gang: int) -> None:
        ticket.start = when
        ticket.gang = gang
        ticket.finish = self.timeline.occupy(gang, when, ticket.service_seconds)
        self.usage[ticket.tenant] = (
            self.usage.get(ticket.tenant, 0.0) + ticket.service_seconds
        )
        self.total_queue_seconds += ticket.queue_seconds
        self._running[ticket.seq] = ticket

    def _pop_earliest_running(self) -> Optional[Ticket]:
        if not self._running:
            return None
        ticket = min(self._running.values(), key=lambda t: (t.finish, t.seq))
        del self._running[ticket.seq]
        self.clock = max(self.clock, ticket.finish)
        return ticket

    def _dispatch_waiting(self) -> None:
        """Fill any idle gangs from the waiting room in fair-share order."""
        while self._waiting:
            gang = self.timeline.idle_gang(self.clock)
            if gang is None:
                return
            self._start(self._fair_pop(), self.clock, gang)

    def _fair_pop(self) -> Ticket:
        """The waiting query of the least-served tenant (FIFO within)."""
        best = min(
            self._waiting,
            key=lambda t: (self.usage.get(t.tenant, 0.0), t.seq),
        )
        self._waiting.remove(best)
        return best

    def _advance(self, until: float) -> None:
        """Process completions with finish <= ``until`` so queue state is
        current before a new arrival is judged."""
        while self._running:
            earliest = min(self._running.values(), key=lambda t: (t.finish, t.seq))
            if earliest.finish > until:
                return
            del self._running[earliest.seq]
            self.clock = max(self.clock, earliest.finish)
            self._backlog.append(earliest)
            self._dispatch_waiting()
