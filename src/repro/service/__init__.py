"""The concurrent query service layer.

A multi-session serving substrate in front of :class:`repro.Database`:
sessions with isolated temp views and parameters, an LRU plan cache
with catalog-version invalidation, prepared statements, admission
control with a bounded queue, and a multi-tenant fair-share slot
scheduler that makes concurrently admitted queries contend for the
simulated cluster's slot-seconds.

Quickstart::

    from repro import Database

    db = Database()
    ...  # create tables, load data
    service = db.service(max_concurrency=4)
    with service.session() as session:
        session.execute("CREATE TEMP VIEW recent AS SELECT * FROM t")
        stmt = session.prepare("SELECT SUM(x * :w) FROM recent")
        for w in (0.5, 1.0, 2.0):
            print(stmt.execute(w=w).scalar())   # plans once, runs thrice
    print(service.report())
"""

from ..errors import (
    CursorClosedError,
    CursorError,
    CursorInvalidatedError,
    QueryTimeoutError,
    RateLimitedError,
    ServiceError,
    ServiceOverloadedError,
    SessionClosedError,
)
from .cursors import Cursor
from .locking import LockDisciplineAuditor, LockViolation, owned
from .metrics import ServiceMetrics, SessionStats, percentile
from .plan_cache import (
    CachedPlan,
    PlanCache,
    PlanCacheKey,
    normalize_sql,
    param_signature,
)
from .scheduler import SlotScheduler, Ticket
from .service import CircuitBreaker, PendingQuery, QueryService, ServiceConfig
from .session import PreparedStatement, Session, SessionCatalog

__all__ = [
    "CachedPlan",
    "CircuitBreaker",
    "Cursor",
    "CursorClosedError",
    "CursorError",
    "CursorInvalidatedError",
    "LockDisciplineAuditor",
    "LockViolation",
    "PendingQuery",
    "PlanCache",
    "PlanCacheKey",
    "PreparedStatement",
    "QueryService",
    "QueryTimeoutError",
    "RateLimitedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "Session",
    "SessionCatalog",
    "SessionClosedError",
    "SessionStats",
    "SlotScheduler",
    "Ticket",
    "normalize_sql",
    "owned",
    "param_signature",
    "percentile",
]
