"""Streaming result cursors: paginated fetch over a completed result.

A :class:`Cursor` is the session-side half of the wire protocol's
streaming fetch (``POST /query`` returns the first page plus an opaque
cursor token; ``POST /fetch`` drains the rest). It is a small state
machine in the style of opteryx's ``cursor.py``:

    open ──fetch*──▶ open (position advances, ``exhausted`` once past
    │                the last row; further fetches return empty pages)
    └─close()──────▶ closed (fetch raises :class:`CursorClosedError`)

Two events force-close a cursor from the outside:

* the owning **session closes** (explicitly or via TTL garbage
  collection) — every fetch afterwards raises
  :class:`CursorClosedError`;
* **DDL/DML on the shared catalog** — the catalog version moves past
  the one the cursor was opened under, the snapshot can no longer be
  assumed consistent, and the next fetch raises
  :class:`CursorInvalidatedError` (and closes the cursor).

Pages are bounded: ``page_size`` is both the default and the *maximum*
rows per fetch — a client asking for more is clamped, so a single
response can never exceed the negotiated bound.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CursorClosedError, CursorInvalidatedError


class Cursor:
    """Paginated, bounded fetch over one completed query result."""

    def __init__(self, session, result, page_size: int, cursor_id: int):
        if page_size < 1:
            raise ValueError("cursor page_size must be >= 1")
        self.session = session
        self.result = result
        self.page_size = page_size
        self.id = cursor_id
        #: shared-catalog version the result was computed under; a DDL
        #: statement moving past it invalidates the cursor
        self.catalog_version = session.catalog.version
        self.state = "open"
        self._position = 0
        self.pages_served = 0

    # -- state -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.state == "closed"

    @property
    def position(self) -> int:
        """Rows already fetched."""
        return self._position

    @property
    def rows_total(self) -> int:
        return len(self.result.rows)

    @property
    def exhausted(self) -> bool:
        """True once every row has been fetched (an exhausted cursor is
        still open: fetches return empty pages until it is closed)."""
        return self._position >= self.rows_total

    @property
    def columns(self) -> List[str]:
        return self.result.columns

    def _check_fetchable(self) -> None:
        if self.state == "closed":
            raise CursorClosedError(
                f"cursor {self.id} on session "
                f"{self.session.name!r} is closed"
            )
        if self.session.closed:
            self.close()
            raise CursorClosedError(
                f"cursor {self.id}: owning session "
                f"{self.session.name!r} was closed"
            )
        if self.session.catalog.version != self.catalog_version:
            self.close()
            raise CursorInvalidatedError(
                f"cursor {self.id}: catalog moved from version "
                f"{self.catalog_version} to "
                f"{self.session.catalog.version} (DDL/DML since the "
                f"result was computed)"
            )

    # -- fetching ----------------------------------------------------------

    def fetchmany(self, size: Optional[int] = None) -> List[tuple]:
        """The next page: at most ``min(size, page_size)`` rows (all
        remaining when fewer). Past the end, an empty list."""
        self._check_fetchable()
        if size is None:
            size = self.page_size
        if size < 1:
            raise ValueError(f"fetch size must be >= 1, got {size}")
        size = min(size, self.page_size)
        rows = self.result.rows[self._position : self._position + size]
        self._position += len(rows)
        self.pages_served += 1
        return list(rows)

    def fetchall(self) -> List[tuple]:
        """Every remaining row, page by page (each page stays bounded;
        this just loops for the caller)."""
        rows: List[tuple] = []
        while True:
            page = self.fetchmany()
            if not page:
                return rows
            rows.extend(page)

    def close(self) -> None:
        """Release the cursor; idempotent."""
        if self.state != "closed":
            self.state = "closed"
            self.session._cursor_closed(self)

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Cursor(#{self.id} session={self.session.name!r} "
            f"{self._position}/{self.rows_total} rows, {self.state})"
        )
