"""Lock discipline for the thread-safe service layer.

The service layer is driven concurrently by the network front end's
worker pool (``repro.server``), so every mutable component owns an
``RLock`` named ``_lock`` and every attribute write after construction
must happen while that lock is held. Two helpers enforce the rule:

* :func:`owned` — is the calling thread currently holding a lock;
* :class:`LockDisciplineAuditor` — a test harness that patches audited
  classes' ``__setattr__`` to record every post-construction attribute
  write performed without the owning lock. The thread-safety lint
  (``tests/test_lock_discipline.py``) runs a concurrent workload under
  the auditor and fails on any recorded violation, so future PRs cannot
  silently reintroduce unlocked writes.

The convention that makes auditing possible: audited classes assign
``self._lock`` **last** in ``__init__`` (or declare it as the final
dataclass field). Until ``_lock`` exists, writes are construction and
exempt; from then on, every write needs the lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple, Type


def owned(lock) -> bool:
    """True when the *calling thread* holds ``lock``.

    Works for :class:`threading.RLock` (via the interpreter's owner
    check) and degrades to plain ``locked()`` for primitive locks,
    which cannot name an owner.
    """
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:
        return bool(is_owned())
    return lock.locked()


@dataclass(frozen=True)
class LockViolation:
    """One attribute write performed without the owning lock."""

    class_name: str
    attribute: str
    thread_name: str

    def __str__(self) -> str:  # pragma: no cover - debug rendering
        return (
            f"{self.class_name}.{self.attribute} written by thread "
            f"{self.thread_name!r} without holding {self.class_name}._lock"
        )


class LockDisciplineAuditor:
    """Patches classes to detect attribute writes outside their lock.

    Usage (see ``tests/test_lock_discipline.py``)::

        auditor = LockDisciplineAuditor()
        with auditor.audit(QueryService, PlanCache, SlotScheduler):
            ...  # drive a concurrent workload
        assert auditor.violations == []

    Only writes on instances that already carry a ``_lock`` attribute
    are checked; construction (before the lock exists) is exempt, as is
    the ``_lock`` assignment itself.
    """

    def __init__(self, exempt: Tuple[str, ...] = ("_lock",)):
        self.exempt = frozenset(exempt)
        self.violations: List[LockViolation] = []
        self._originals: Dict[Type, object] = {}
        self._record_lock = threading.Lock()

    def audit(self, *classes: Type) -> "LockDisciplineAuditor":
        for cls in classes:
            self._patch(cls)
        return self

    def _patch(self, cls: Type) -> None:
        if cls in self._originals:
            return
        original = cls.__setattr__
        self._originals[cls] = original
        auditor = self

        def audited_setattr(instance, name, value, _original=original):
            lock = instance.__dict__.get("_lock")
            if lock is not None and name not in auditor.exempt and not owned(lock):
                with auditor._record_lock:
                    auditor.violations.append(
                        LockViolation(
                            class_name=type(instance).__name__,
                            attribute=name,
                            thread_name=threading.current_thread().name,
                        )
                    )
            _original(instance, name, value)

        cls.__setattr__ = audited_setattr

    def restore(self) -> None:
        for cls, original in self._originals.items():
            cls.__setattr__ = original
        self._originals.clear()

    def __enter__(self) -> "LockDisciplineAuditor":
        return self

    def __exit__(self, *exc) -> None:
        self.restore()
