"""Sessions: per-client state in front of a shared :class:`Database`.

A session owns

* **temp views** — ``CREATE TEMP VIEW`` (or :meth:`Session.create_temp_view`)
  registers a view visible only to this session, shadowing shared
  relations of the same name; two sessions can hold same-named temp
  views without observing each other;
* **session parameters** — default values for the SQL front end's named
  ``:param`` placeholders, merged under per-call parameters;
* **prepared statements** — parse once, then execute repeatedly with
  fresh parameter values; planning is delegated to the service's plan
  cache, so repeated executions skip parse/bind/optimize entirely.

Temp views are implemented as a catalog *overlay*: binding resolves
views against the overlay first, then the shared catalog. Only SELECT
statements (and prepared SELECTs) see temp views; DDL/DML statements
operate on the shared catalog.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Union

from ..catalog.catalog import ViewEntry
from ..errors import (
    CatalogError,
    CompileError,
    ServiceOverloadedError,
    SessionClosedError,
)
from ..plan import Binder
from ..sql import ast, parse_statement


def _jitter_fraction(session_name: str, attempt: int) -> float:
    """A deterministic uniform in [0, 1) seeded from (session, attempt),
    so backoff jitter de-synchronizes retrying clients without making
    the simulation non-reproducible."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(session_name.encode("utf-8"))
    hasher.update(struct.pack("<q", attempt))
    return int.from_bytes(hasher.digest(), "little") / float(2**64)


class SessionCatalog:
    """Read overlay: session temp views shadow the shared catalog."""

    def __init__(self, shared):
        self._shared = shared
        self._temp_views: Dict[str, ViewEntry] = {}

    # Binder resolves FROM items through these two methods.
    def view(self, name: str) -> Optional[ViewEntry]:
        entry = self._temp_views.get(name.lower())
        if entry is not None:
            return entry
        return self._shared.view(name)

    def table(self, name: str):
        return self._shared.table(name)

    def shared_view(self, name: str) -> Optional[ViewEntry]:
        """Resolution skipping the temp-view overlay; the binder uses
        this inside a view body that references its own name."""
        return self._shared.view(name)

    def has_relation(self, name: str) -> bool:
        return name.lower() in self._temp_views or self._shared.has_relation(name)

    def materialized_view(self, name: str):
        # a session temp view shadows a shared materialized view of the
        # same name, exactly as it shadows plain views and tables
        if name.lower() in self._temp_views:
            return None
        return self._shared.materialized_view(name)

    def materialized_views(self):
        return self._shared.materialized_views()

    def table_version(self, name: str) -> int:
        return self._shared.table_version(name)

    @property
    def version(self) -> int:
        return self._shared.version

    @property
    def ddl_version(self) -> int:
        return self._shared.ddl_version

    def temp_view_names(self) -> List[str]:
        return sorted(self._temp_views)

    def add_temp_view(self, entry: ViewEntry) -> None:
        self._temp_views[entry.name.lower()] = entry

    def drop_temp_view(self, name: str) -> bool:
        return self._temp_views.pop(name.lower(), None) is not None

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return True


class PreparedStatement:
    """A parsed SELECT bound to a session; execution goes through the
    service's plan cache, so repeated runs with same-typed parameters
    never re-plan — the runtime parameter cells are simply rebound."""

    def __init__(self, session: "Session", sql: str, statement: ast.SelectStatement):
        self.session = session
        self.sql = sql
        self.statement = statement

    def execute(self, params: Optional[Dict[str, object]] = None, **kw):
        merged = dict(params or {})
        merged.update(kw)
        return self.session._execute_select(self.sql, self.statement, merged)

    def __repr__(self):
        return f"PreparedStatement({self.sql!r})"


class Session:
    """One client's handle on the query service."""

    def __init__(self, service, name: str, tenant: Optional[str] = None):
        self._service = service
        self.name = name
        #: accounting group for per-tenant rate limits in the network
        #: layer; many sessions may share a tenant
        self.tenant = tenant or name
        self.catalog = SessionCatalog(service.db.catalog)
        self.params: Dict[str, object] = {}
        self._view_version = 0
        self._closed = False
        #: simulated time of this session's latest completion; sequential
        #: execute() calls chain their arrivals from it (a session is a
        #: closed-loop client: it issues the next query after seeing the
        #: previous result)
        self.clock = 0.0
        #: real (wall-clock) time of the last statement; the service's
        #: TTL garbage collector reaps sessions idle past session_ttl_s
        self.last_used = service._time()
        #: open streaming cursors by id (see repro.service.cursors)
        self._cursors: Dict[int, "Cursor"] = {}
        self._cursor_seq = 0
        #: ephemeral sessions (created per-request by the network layer)
        #: auto-close once their last cursor is released
        self.ephemeral = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the session, releasing everything it holds: open
        cursors, temp views, and session parameters. Idempotent."""
        with self._service._lock:
            if not self._closed:
                self._closed = True
                for cursor in list(self._cursors.values()):
                    cursor.close()
                self._cursors.clear()
                self.catalog._temp_views.clear()
                self.params.clear()
                self._service._release(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(f"session {self.name!r} is closed")

    # -- cursors -----------------------------------------------------------

    def open_cursor(self, result, page_size: Optional[int] = None) -> "Cursor":
        """Wrap a completed result in a paginated :class:`Cursor`.

        ``page_size`` defaults to ``ServiceConfig.default_page_size`` and
        is clamped to ``ServiceConfig.max_page_size``; it bounds every
        page the cursor will ever serve."""
        from .cursors import Cursor

        with self._service._lock:
            self._check_open()
            config = self._service.config
            if page_size is None:
                page_size = config.default_page_size
            page_size = min(page_size, config.max_page_size)
            self._cursor_seq += 1
            cursor = Cursor(self, result, page_size, self._cursor_seq)
            self._cursors[cursor.id] = cursor
            return cursor

    def cursor(self, cursor_id: int) -> Optional["Cursor"]:
        """Look up an open cursor by id (None if closed or unknown)."""
        return self._cursors.get(cursor_id)

    def open_cursors(self) -> List["Cursor"]:
        return list(self._cursors.values())

    def _cursor_closed(self, cursor: "Cursor") -> None:
        with self._service._lock:
            self._cursors.pop(cursor.id, None)
            # per-request sessions created by the network layer live only
            # as long as their streaming results do
            if self.ephemeral and not self._cursors and not self._closed:
                self.close()

    # -- session state -----------------------------------------------------

    def set_param(self, name: str, value) -> None:
        """Set a session-default value for ``:name``; per-call parameters
        override it."""
        self._check_open()
        self.params[name] = value

    def unset_param(self, name: str) -> None:
        self._check_open()
        self.params.pop(name, None)

    def create_temp_view(
        self,
        name: str,
        query: Union[str, ast.SelectStatement],
        column_names: Optional[List[str]] = None,
    ) -> None:
        """Register a session-local view; shadows any shared relation of
        the same name for this session's SELECTs."""
        self._check_open()
        if isinstance(query, str):
            statement = parse_statement(query)
            if not isinstance(statement, ast.SelectStatement):
                raise CompileError("a temp view needs a SELECT query")
        else:
            statement = query
        if name.lower() in self.catalog._temp_views:
            raise CatalogError(
                f"temp view {name!r} already exists in session {self.name!r}"
            )
        # validate eagerly against the overlay so errors surface now
        binder = Binder(self.catalog, dict(self.params), defer_params=True)
        plan = binder.bind_select(statement)
        if column_names is not None and len(column_names) != len(plan.columns):
            raise CompileError(
                f"temp view {name!r}: {len(column_names)} column name(s) "
                f"for {len(plan.columns)} column(s)"
            )
        self.catalog.add_temp_view(ViewEntry(name, statement, column_names))
        self._view_version += 1

    def drop_temp_view(self, name: str, if_exists: bool = False) -> None:
        self._check_open()
        if self.catalog.drop_temp_view(name):
            self._view_version += 1
        elif not if_exists:
            raise CatalogError(
                f"no temp view named {name!r} in session {self.name!r}"
            )

    def temp_views(self) -> List[str]:
        return self.catalog.temp_view_names()

    @property
    def plan_scope(self) -> str:
        """The session's contribution to the plan-cache key: empty (so
        plans are shared across sessions) unless temp views could change
        name resolution."""
        if not self.catalog._temp_views:
            return ""
        return f"{self.name}#{self._view_version}"

    # -- statements --------------------------------------------------------

    def execute(self, sql: str, params: Optional[Dict[str, object]] = None):
        """Execute one statement through the service: SELECTs go through
        the plan cache and the admission scheduler; ``CREATE TEMP VIEW``
        is session-local; other statements run on the shared database
        (and, being DDL/DML, invalidate cached plans via the catalog
        version)."""
        self._check_open()
        statement = parse_statement(sql)
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(sql, statement, params or {})
        if isinstance(statement, ast.CreateView) and statement.temporary:
            self.create_temp_view(
                statement.name, statement.query, statement.column_names
            )
            from ..db import Result

            return Result([], [])
        return self._service._execute_passthrough(self, statement, self._merge(params))

    def submit(self, sql: str, params: Optional[Dict[str, object]] = None):
        """Asynchronous flavour of :meth:`execute` for SELECTs: admits
        the query and returns a :class:`~repro.service.PendingQuery`
        without waiting for its simulated completion (used by the
        closed-loop benchmark driver)."""
        self._check_open()
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("submit() supports SELECT statements only")
        return self._service.submit_select(self, sql, statement, self._merge(params))

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse a SELECT once for repeated parameterized execution."""
        self._check_open()
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("prepare() supports SELECT statements only")
        return PreparedStatement(self, sql, statement)

    def explain(self, sql: str, params: Optional[Dict[str, object]] = None) -> str:
        """EXPLAIN against this session's name resolution (temp views)."""
        self._check_open()
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("EXPLAIN supports SELECT statements only")
        db = self._service.db
        logical = db._plan_select(statement, self._merge(params), catalog=self.catalog)
        physical = db._plan_physical(logical)
        return (
            "== logical ==\n" + logical.pretty() + "\n== physical ==\n" + physical.pretty()
        )

    # -- helpers -----------------------------------------------------------

    def _merge(self, params: Optional[Dict[str, object]]) -> Dict[str, object]:
        merged = dict(self.params)
        merged.update(params or {})
        return merged

    def _execute_select(
        self, sql: str, statement: ast.SelectStatement, params: Optional[Dict[str, object]]
    ):
        """Submit-and-wait with client-side retry: admission rejections
        (queue full, breaker open) are retried up to
        ``ServiceConfig.retry_max_attempts`` times with exponential
        backoff plus deterministic jitter. The backoff is a *simulated*
        sleep — it advances this session's clock, so by the retry's
        arrival time the scheduler has drained whatever the rejection's
        ``retry_after_s`` hint predicted."""
        self._check_open()
        config = self._service.config
        attempts = max(1, config.retry_max_attempts)
        delay = config.retry_backoff_s
        merged = self._merge(params)
        for attempt in range(1, attempts + 1):
            try:
                pending = self._service.submit_select(self, sql, statement, merged)
            except ServiceOverloadedError as exc:
                if attempt == attempts:
                    raise
                jitter = delay * config.retry_jitter * _jitter_fraction(
                    self.name, attempt
                )
                # honor the service's hint when it is longer than our
                # own backoff — retrying earlier would just be shed again
                self.clock += max(delay + jitter, exc.retry_after_s)
                delay *= config.retry_backoff_multiplier
                self._service.metrics.observe_retry(self.name)
                continue
            return self._service.wait(pending)

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return f"Session({self.name!r}, {state}, temp_views={self.temp_views()})"
