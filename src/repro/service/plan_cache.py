"""The plan cache: compiled query plans keyed on normalized SQL.

Every ``Database.execute`` re-parses, re-binds and re-optimizes its
statement. For a serving workload of repeated query *templates* that is
pure overhead — SimSQL-style systems pay seconds of compilation per
statement. The cache stores the optimized logical plan, the physical
plan, and the statement's runtime parameter cells, keyed on:

* the **normalized SQL text** (token-normalized: whitespace and keyword
  case insensitive, so ``select X`` and ``SELECT  x`` share a plan);
* the **DDL version** — bumped only when the set of relations changes
  (CREATE/DROP), so schema changes invalidate everything, while plain
  data changes do not touch the key at all;
* the **referenced-table versions** — each cached plan records the
  per-table version of every base table it scans at compile time, and
  a lookup revalidates them: an ``INSERT`` into table A bumps only A's
  version, so plans that touch only table B keep hitting (previously
  any catalog bump flushed the whole cache);
* the **parameter type signature** — plans bake in inferred vector and
  matrix dimensions (the paper's templated signatures), so ``:v`` bound
  to a length-10 vector compiles a different plan than a length-20 one;
* the **session scope** — empty for sessions without temp views, so
  plain queries share plans across sessions, while sessions that shadow
  names with temp views get isolated entries.

Bounded LRU; hit/miss/eviction counters feed the service metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..sql.lexer import tokenize
from ..types import LabeledScalar, Matrix, Vector


def normalize_sql(sql: str) -> str:
    """A whitespace- and keyword-case-insensitive rendering of one SQL
    statement, used as the textual part of the cache key."""
    parts = []
    for token in tokenize(sql):
        if token.kind == "EOF":
            break
        if token.kind == "KEYWORD":
            parts.append(token.text.upper())
        elif token.kind == "IDENT":
            parts.append(token.text.lower())
        elif token.kind == "STRING":
            # re-quote so a string literal can never collide with an
            # identifier of the same spelling
            parts.append(repr(token.text))
        elif token.kind == "PARAM":
            parts.append(f":{token.text}")
        else:
            parts.append(token.text)
    return " ".join(parts)


def param_type_key(value) -> Tuple:
    """A hashable tag of one parameter value's *type* (including LA
    dimensions), mirroring how the binder types literals. Values of the
    same tag can safely share a compiled plan."""
    if isinstance(value, bool):
        return ("bool",)
    if isinstance(value, int):
        return ("int",)
    if isinstance(value, float):
        return ("double",)
    if isinstance(value, str):
        return ("string",)
    if isinstance(value, LabeledScalar):
        return ("labeled_scalar",)
    if isinstance(value, Vector):
        return ("vector", value.length)
    if isinstance(value, Matrix):
        return ("matrix", value.rows, value.cols)
    if value is None:
        return ("null",)
    return ("opaque", type(value).__name__)


def param_signature(params: Dict[str, object]) -> Tuple:
    """The sorted (name, type tag) signature of a parameter set."""
    return tuple(
        (name, param_type_key(value)) for name, value in sorted(params.items())
    )


@dataclass(frozen=True)
class PlanCacheKey:
    sql: str
    #: the catalog's *DDL* version (relation set), not its full version:
    #: data changes are validated per referenced table instead (see
    #: :attr:`CachedPlan.table_versions`), so an INSERT into one table
    #: no longer invalidates plans over unrelated tables
    ddl_version: int
    param_types: Tuple
    scope: str = ""
    #: execution-relevant configuration baked into the compiled plan:
    #: (execution_mode, storage_mode, intra_query_parallelism). A plan
    #: compiled under one mode must never serve another — the physical
    #: plan shape and cost decisions can differ.
    exec_fingerprint: Tuple = ()
    #: version of the database's cardinality-feedback statistics at
    #: compile time; feedback that materially changes an estimate bumps
    #: it, so plans built from stale statistics miss and recompile
    feedback_version: int = 0


@dataclass
class CachedPlan:
    """One compiled statement: plans plus its runtime parameter cells."""

    logical: object  # plan.LogicalNode
    physical: object  # plan.PhysicalNode
    param_cells: Dict[str, object] = field(default_factory=dict)
    node_count: int = 0
    #: (table name, catalog table version) for every base table the plan
    #: reads — including the bases of any materialized view it answers
    #: from — captured at compile time; a lookup revalidates these so
    #: data changes invalidate exactly the plans that read them
    table_versions: Tuple[Tuple[str, int], ...] = ()

    def bind(self, params: Dict[str, object]) -> None:
        """Write fresh parameter values into the plan's cells before an
        execution; raises KeyError-free CompileError upstream if a used
        parameter is missing (the cache key makes that impossible for
        cache hits)."""
        for name, cell in self.param_cells.items():
            cell.set(params[name])


def count_nodes(plan) -> int:
    """Plan size (physical operators), used to model compile cost."""
    return 1 + sum(count_nodes(child) for child in plan.children())


def referenced_tables(logical) -> Tuple[str, ...]:
    """Sorted lowercase names of every base table a logical plan reads.
    A ViewScan contributes its view's base tables: the stored view state
    tracks those tables, so the plan is stale exactly when they move."""
    from ..plan.logical import ScanNode, ViewScanNode

    names = set()
    stack = [logical]
    while stack:
        node = stack.pop()
        if isinstance(node, ScanNode):
            names.add(node.table.name.lower())
        elif isinstance(node, ViewScanNode):
            names.update(node.view.base_tables)
        stack.extend(node.children())
    return tuple(sorted(names))


class PlanCache:
    """A bounded LRU mapping :class:`PlanCacheKey` to :class:`CachedPlan`."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanCacheKey, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self, key: PlanCacheKey, table_version_of=None
    ) -> Optional[CachedPlan]:
        """Find a live entry. ``table_version_of`` (a ``name -> version``
        callable, normally ``catalog.table_version``) revalidates the
        entry's recorded base-table versions: a mismatch means the data
        under the plan moved, so the entry is dropped and the lookup
        misses — plans over untouched tables keep hitting."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if table_version_of is not None and any(
                table_version_of(name) != version
                for name, version in getattr(entry, "table_versions", ())
            ):
                del self._entries[key]
                self.invalidated += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: PlanCacheKey, plan: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def purge_stale(
        self,
        current_version: int,
        feedback_version: Optional[int] = None,
    ) -> int:
        """Drop entries compiled against an older DDL version (or, when
        ``feedback_version`` is given, older feedback statistics); they
        can never hit again (the key embeds both versions), so this only
        frees memory. Returns the number dropped."""
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.ddl_version != current_version
                or (
                    feedback_version is not None
                    and key.feedback_version != feedback_version
                )
            ]
            for key in stale:
                del self._entries[key]
            self.invalidated += len(stale)
            return len(stale)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
            }
