"""The :class:`QueryService` facade.

Sits in front of one :class:`~repro.db.Database` and provides the
serving substrate: sessions, the plan cache, admission control, the
fair-share slot scheduler, and service metrics. SELECT statements flow::

    session.execute(sql, params)
        -> plan cache lookup (normalized SQL, catalog version,
           parameter type signature, session scope)
           miss: bind/optimize once, parameters as runtime cells,
                 charge simulated compile_seconds
           hit:  rebind the cells, compile_seconds = 0
        -> execute on the simulated cluster (real rows, dedicated-run
           metrics)
        -> admission + fair-share scheduling in simulated time
           (queue_seconds / stretch_seconds land in the metrics)

The scheduler runs in simulated time, so "concurrency" means logically
concurrent clients of the simulation — the driver in
``repro.bench.serve`` keeps many sessions in flight via
:meth:`Session.submit` / :meth:`QueryService.next_completion`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional

from ..db import Database, Result, _convert_value
from ..engine.metrics import QueryMetrics
from ..errors import QueryTimeoutError, ServiceOverloadedError
from ..sql import ast
from .metrics import ServiceMetrics
from .plan_cache import (
    CachedPlan,
    PlanCache,
    PlanCacheKey,
    count_nodes,
    normalize_sql,
    param_signature,
    referenced_tables,
)
from .scheduler import SlotScheduler, Ticket
from .session import Session


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the query service layer."""

    #: execution gangs: how many admitted queries run concurrently
    max_concurrency: int = 4
    #: bounded admission queue; a full queue rejects with
    #: ServiceOverloadedError
    admission_queue_limit: int = 8
    #: LRU bound of the plan cache
    plan_cache_capacity: int = 128
    #: disable to measure the cache's effect (every statement re-plans)
    plan_cache_enabled: bool = True
    #: simulated seconds of fixed planning overhead per compilation
    #: (SimSQL-era systems compile statements to Java — it is not cheap)
    compile_cost_s: float = 2.0
    #: additional simulated compile seconds per physical operator
    compile_cost_per_node_s: float = 0.25
    #: when set, force the database onto this interpreter back end
    #: ("row" or "batch"); None keeps the database's configured mode
    execution_mode: Optional[str] = None
    #: optional admission budget on a query's estimated per-slot working
    #: set (bytes); queries estimated above it are rejected with
    #: ServiceOverloadedError before execution. None disables the check.
    memory_budget_bytes: Optional[float] = None
    #: per-query budget on client-observed simulated latency (compile +
    #: queueing + stretched execution); None disables timeouts
    query_timeout_s: Optional[float] = None
    #: total submission attempts per execute() when admission rejects
    #: with ServiceOverloadedError; 1 means fail on the first rejection
    retry_max_attempts: int = 1
    #: base delay of the exponential backoff between retries (simulated
    #: seconds of client-side sleep)
    retry_backoff_s: float = 0.5
    #: backoff growth factor per retry
    retry_backoff_multiplier: float = 2.0
    #: deterministic jitter: each delay is stretched by up to this
    #: fraction, seeded from (session name, attempt)
    retry_jitter: float = 0.1
    #: consecutive admission rejections that trip the circuit breaker;
    #: 0 disables the breaker
    breaker_threshold: int = 0
    #: simulated seconds the breaker stays open, shedding submissions
    #: without touching the scheduler
    breaker_cooldown_s: float = 30.0
    #: idle sessions older than this many *real* seconds are garbage-
    #: collected on the next sweep (temp views and cursors released)
    #: instead of accumulating for the process lifetime; None disables
    #: TTL collection (explicit close() still releases immediately)
    session_ttl_s: Optional[float] = None
    #: default rows per cursor page when the client does not ask for a
    #: specific page size
    default_page_size: int = 256
    #: hard upper bound on any cursor page (a fetch asking for more is
    #: clamped, keeping single responses bounded)
    max_page_size: int = 10_000

    def with_updates(self, **kwargs) -> "ServiceConfig":
        return replace(self, **kwargs)


class CircuitBreaker:
    """Sheds load after repeated admission rejections.

    ``threshold`` consecutive rejections open the breaker for
    ``cooldown_s`` simulated seconds; while open, submissions fail fast
    with :class:`ServiceOverloadedError` (``retry_after_s`` = remaining
    cooldown) without planning, executing, or touching the scheduler.
    After the cooldown the breaker half-opens: the next submission goes
    through as a probe, and its outcome closes or re-opens the breaker.
    """

    def __init__(self, threshold: int, cooldown_s: float):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.consecutive_rejections = 0
        self.open_until: Optional[float] = None
        #: times the breaker tripped open
        self.opened = 0
        #: submissions fast-failed while open
        self.shed = 0
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def check(self, now: float) -> None:
        """Raise if the breaker is open at simulated time ``now``."""
        with self._lock:
            if not self.enabled or self.open_until is None:
                return
            if now >= self.open_until:
                # cooldown elapsed: half-open, let one probe through
                self.open_until = None
                return
            self.shed += 1
            raise ServiceOverloadedError(
                f"circuit breaker open for another "
                f"{self.open_until - now:.3f}s (tripped by "
                f"{self.threshold} consecutive rejections)",
                retry_after_s=self.open_until - now,
            )

    def record_rejection(self, now: float) -> None:
        with self._lock:
            if not self.enabled:
                return
            self.consecutive_rejections += 1
            if self.consecutive_rejections >= self.threshold:
                self.open_until = now + self.cooldown_s
                self.opened += 1
                self.consecutive_rejections = 0

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_rejections = 0
            self.open_until = None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "open": self.open_until is not None,
                "opened": self.opened,
                "shed": self.shed,
                "consecutive_rejections": self.consecutive_rejections,
            }


class PendingQuery:
    """A submitted SELECT: rows are computed, simulated completion may
    still lie in the future until the scheduler resolves it."""

    def __init__(
        self,
        session: Session,
        sql: str,
        result: Result,
        ticket: Ticket,
        cache_hit: bool,
    ):
        self.session = session
        self.sql = sql
        self.result = result
        self.ticket = ticket
        self.cache_hit = cache_hit
        self.finalized = False
        #: set at finalization when the client-observed latency blew the
        #: service's per-query timeout; wait() then raises
        self.timed_out = False

    @property
    def metrics(self) -> QueryMetrics:
        return self.result.metrics

    @property
    def trace(self):
        """The per-operator estimate-vs-actual
        :class:`~repro.engine.OperatorTrace` of this query's execution."""
        return self.result.metrics.trace

    @property
    def done(self) -> bool:
        return self.finalized

    def __repr__(self):
        state = "done" if self.finalized else "in-flight"
        return f"PendingQuery({self.sql!r}, {state})"


class QueryService:
    """Multi-session serving facade over one database.

    Thread-safe: the network serving layer (``repro.server``) drives
    one service instance from a pool of real worker threads. The
    service's reentrant lock guards planning and scheduler/session/
    breaker state, but it is *released* around cluster execution in
    :meth:`submit_select` — admitted read statements from different
    worker threads genuinely overlap, serialized only by the database's
    reader–writer admission gate (shared for SELECTs, exclusive for
    DDL/DML). The plan cache, scheduler, breaker, and metrics
    additionally own their component locks so they stay safe when used
    standalone. The lock-discipline lint
    (``tests/test_lock_discipline.py``) audits that every
    post-construction attribute write holds the owning lock.
    """

    def __init__(
        self,
        db: Database,
        config: Optional[ServiceConfig] = None,
        time_source: Optional[Callable[[], float]] = None,
    ):
        self.db = db
        self.config = config or ServiceConfig()
        if self.config.execution_mode is not None:
            db.set_execution_mode(self.config.execution_mode)
        #: real (wall-clock) time source for session idle tracking;
        #: injectable so TTL garbage collection is testable
        self._time = time_source or time.monotonic
        self.plan_cache = PlanCache(self.config.plan_cache_capacity)
        self.scheduler = SlotScheduler(
            self.config.max_concurrency, self.config.admission_queue_limit
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self.metrics = ServiceMetrics()
        self._sessions: Dict[str, Session] = {}
        self._session_counter = 0
        self._inflight: Dict[int, PendingQuery] = {}
        self._ready: Deque[PendingQuery] = deque()
        self.sessions_opened = 0
        self.sessions_closed = 0
        #: sessions reaped by TTL garbage collection (subset of closed)
        self.sessions_collected = 0
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    # -- sessions ----------------------------------------------------------

    def session(
        self, name: Optional[str] = None, tenant: Optional[str] = None
    ) -> Session:
        """Acquire a new session (auto-named ``s1``, ``s2``, ... unless
        a name is given). ``tenant`` groups sessions for per-tenant
        accounting (rate limits in the network layer); it defaults to
        the session name."""
        with self._lock:
            self.gc_sessions()
            if name is None:
                self._session_counter += 1
                name = f"s{self._session_counter}"
            if name in self._sessions:
                raise ValueError(f"session {name!r} already active")
            session = Session(self, name, tenant=tenant)
            self._sessions[name] = session
            self.sessions_opened += 1
            return session

    def sessions(self) -> Dict[str, Session]:
        with self._lock:
            return dict(self._sessions)

    def touch(self, session: Session) -> None:
        """Refresh a session's idle clock (called on every statement)."""
        with self._lock:
            session.last_used = self._time()

    def gc_sessions(self, now: Optional[float] = None) -> List[str]:
        """Close sessions idle past ``ServiceConfig.session_ttl_s``,
        releasing their temp views and cursors. Returns the names of the
        collected sessions. A no-op when TTL collection is disabled."""
        ttl = self.config.session_ttl_s
        if ttl is None:
            return []
        with self._lock:
            if now is None:
                now = self._time()
            expired = [
                session
                for session in self._sessions.values()
                if now - session.last_used > ttl
            ]
            for session in expired:
                self.sessions_collected += 1
                session.close()
            return [session.name for session in expired]

    def _release(self, session: Session) -> None:
        with self._lock:
            if self._sessions.pop(session.name, None) is not None:
                self.sessions_closed += 1

    # -- planning ----------------------------------------------------------

    def _plan(
        self,
        session: Session,
        sql: str,
        statement: ast.SelectStatement,
        params: Dict[str, object],
    ):
        """Cached bind+optimize. Returns (cached_plan, cache_hit,
        compile_seconds)."""
        converted = {
            name: _convert_value(value) for name, value in params.items()
        }
        key = PlanCacheKey(
            sql=normalize_sql(sql),
            ddl_version=self.db.catalog.ddl_version,
            param_types=param_signature(converted),
            scope=session.plan_scope,
            exec_fingerprint=(
                self.db.execution_mode,
                self.db.config.storage_mode,
                self.db.config.intra_query_parallelism,
            ),
            feedback_version=self.db.feedback.version,
        )
        if self.config.plan_cache_enabled:
            cached = self.plan_cache.lookup(
                key, table_version_of=self.db.catalog.table_version
            )
            if cached is not None:
                cached.bind(converted)
                return cached, True, 0.0
        cells: Dict[str, object] = {}
        logical = self.db._plan_select(
            statement, converted, catalog=session.catalog, param_cells=cells
        )
        physical = self.db._plan_physical(logical)
        plan = CachedPlan(
            logical=logical,
            physical=physical,
            param_cells=cells,
            node_count=count_nodes(physical),
            table_versions=tuple(
                (name, self.db.catalog.table_version(name))
                for name in referenced_tables(logical)
            ),
        )
        compile_seconds = (
            self.config.compile_cost_s
            + self.config.compile_cost_per_node_s * plan.node_count
        )
        if self.config.plan_cache_enabled:
            self.plan_cache.purge_stale(
                self.db.catalog.ddl_version,
                feedback_version=self.db.feedback.version,
            )
            self.plan_cache.store(key, plan)
        return plan, False, compile_seconds

    # -- execution ---------------------------------------------------------

    def submit_select(
        self,
        session: Session,
        sql: str,
        statement: ast.SelectStatement,
        params: Dict[str, object],
        arrival: Optional[float] = None,
    ) -> PendingQuery:
        """Plan (via the cache), execute on the cluster, and admit the
        query to the slot scheduler at simulated time ``arrival``.
        Raises :class:`ServiceOverloadedError` when the admission queue
        is full or the circuit breaker is open, and
        :class:`QueryTimeoutError` when the query's own service demand
        already exceeds the per-query timeout.

        The service lock is held for planning and for scheduler/breaker
        bookkeeping but *released* around cluster execution, so read
        statements from different worker threads genuinely overlap: the
        database's admission gate (shared for SELECTs) and the engine's
        per-statement executors make that safe, and parameter bindings
        travel as thread-local cells snapshotted by the executing
        thread."""
        with self._lock:
            session.last_used = self._time()
            if arrival is None:
                arrival = session.clock
            self.breaker.check(max(arrival, self.scheduler.clock))
            plan, cache_hit, compile_seconds = self._plan(
                session, sql, statement, params
            )
            budget = self.config.memory_budget_bytes
            if budget is not None:
                demand = self._estimate_peak_bytes(plan.physical)
                if demand > budget:
                    self.metrics.observe_rejection(session.name)
                    self.breaker.record_rejection(self.scheduler.clock)
                    raise ServiceOverloadedError(
                        f"estimated per-slot working set "
                        f"{demand / 1e6:.2f} MB exceeds the admission memory "
                        f"budget {budget / 1e6:.2f} MB"
                    )
        # execute WITHOUT the service lock: concurrent submitters overlap
        # here (the expensive part); everything below re-acquires it
        result = self.db._execute_physical(
            plan.logical, plan.physical, param_cells=plan.param_cells
        )
        with self._lock:
            metrics = result.metrics
            metrics.compile_seconds = compile_seconds
            # gang model: operator work stretches on slots/M cores, per-job
            # startup does not (see service.scheduler)
            stretch = metrics.operator_seconds * (
                self.scheduler.max_concurrency - 1
            )
            service_seconds = compile_seconds + metrics.total_seconds + stretch
            timeout = self.config.query_timeout_s
            if timeout is not None and service_seconds > timeout:
                # can never finish in budget even with zero queueing:
                # fail fast instead of occupying a gang
                self.metrics.observe_timeout(session.name)
                raise QueryTimeoutError(
                    f"query needs {service_seconds:.3f}s of service, over the "
                    f"{timeout:.3f}s per-query timeout",
                    timeout_s=timeout,
                    elapsed_s=service_seconds,
                )
            try:
                ticket = self.scheduler.submit(
                    session.name, service_seconds, arrival
                )
            except ServiceOverloadedError:
                self.metrics.observe_rejection(session.name)
                self.breaker.record_rejection(self.scheduler.clock)
                raise
            self.breaker.record_success()
            metrics.stretch_seconds = stretch
            pending = PendingQuery(session, sql, result, ticket, cache_hit)
            self._inflight[ticket.seq] = pending
            if ticket.finish is not None:
                # started immediately; timing fully known. It stays in
                # _inflight so next_completion() still delivers it exactly
                # once (unless a wait() claims it first).
                self._finalize(pending)
            return pending

    def wait(self, pending: PendingQuery) -> Result:
        """Advance the simulation until ``pending`` completes and claim
        its completion; other queries completing on the way are parked
        for :meth:`next_completion`. Raises :class:`QueryTimeoutError`
        when the completed query blew the per-query timeout."""
        with self._lock:
            return self._wait_locked(pending)

    def _wait_locked(self, pending: PendingQuery) -> Result:
        while not pending.finalized:
            ticket = self.scheduler.next_completion()
            if ticket is None:  # pragma: no cover - defensive
                raise RuntimeError("pending query never completed")
            other = self._inflight.pop(ticket.seq, None)
            if other is None:
                continue
            self._finalize(other)
            if other is not pending:
                self._ready.append(other)
        # claim our own completion: another waiter may have finalized us
        # and parked us in _ready — remove so next_completion() cannot
        # deliver this query a second time
        try:
            self._ready.remove(pending)
        except ValueError:
            pass
        self._inflight.pop(pending.ticket.seq, None)
        if pending.timed_out:
            timeout = self.config.query_timeout_s or 0.0
            raise QueryTimeoutError(
                f"query took {pending.metrics.elapsed_seconds:.3f}s "
                f"(compile + queueing + execution), over the "
                f"{timeout:.3f}s per-query timeout",
                timeout_s=timeout,
                elapsed_s=pending.metrics.elapsed_seconds,
            )
        return pending.result

    def next_completion(self) -> Optional[PendingQuery]:
        """The next submitted query to complete in simulated time, or
        ``None`` when nothing is in flight."""
        with self._lock:
            while True:
                if self._ready:
                    return self._ready.popleft()
                ticket = self.scheduler.next_completion()
                if ticket is None:
                    return None
                pending = self._inflight.pop(ticket.seq, None)
                if pending is None:
                    continue
                self._finalize(pending)
                return pending

    def _finalize(self, pending: PendingQuery) -> None:
        if pending.finalized:
            return
        metrics = pending.metrics
        metrics.queue_seconds = pending.ticket.queue_seconds
        pending.session.clock = max(pending.session.clock, pending.ticket.finish)
        self.metrics.observe(pending.session.name, metrics, pending.cache_hit)
        timeout = self.config.query_timeout_s
        if timeout is not None and metrics.elapsed_seconds > timeout:
            pending.timed_out = True
            self.metrics.observe_timeout(pending.session.name)
        pending.finalized = True

    def _estimate_peak_bytes(self, physical) -> float:
        """A plan's estimated per-slot working-set peak: the largest
        single operator output divided across slots (broadcast outputs
        are a full copy on every slot). Used by admission when
        ``ServiceConfig.memory_budget_bytes`` is set."""
        memo: Dict[int, object] = {}
        slots = self.db.config.slots

        def walk(node) -> float:
            est, _ = self.db.cost_model.physical_estimate(node, memo)
            if node.partitioning.kind == "broadcast":
                per_slot = est.total_bytes
            else:
                per_slot = est.total_bytes / slots
            return max([per_slot] + [walk(child) for child in node.children()])

        return walk(physical)

    def _execute_passthrough(
        self, session: Session, statement: ast.Statement, params: Dict[str, object]
    ) -> Result:
        """Non-SELECT statements: run directly on the shared database.
        DDL/DML bumps the catalog version, invalidating cached plans."""
        with self._lock:
            session.last_used = self._time()
            result = self.db._execute_statement(statement, params)
            self.metrics.session(session.name).queries += 1
            return result

    # -- introspection -----------------------------------------------------

    @property
    def clock(self) -> float:
        """The scheduler's simulated clock (seconds)."""
        return self.scheduler.clock

    def stats(self) -> Dict[str, object]:
        """One merged snapshot: service, cache, and scheduler metrics."""
        with self._lock:
            snapshot = self.metrics.snapshot()
            snapshot["plan_cache"] = self.plan_cache.stats()
            snapshot["scheduler"] = self.scheduler.stats()
            snapshot["breaker"] = self.breaker.stats()
            snapshot["storage"] = self.db.storage.stats()
            snapshot["views"] = self.db.views.stats()
            if self.db.durability is not None:
                snapshot["durability"] = self.db.durability.stats()
            snapshot["active_sessions"] = sorted(self._sessions)
            snapshot["session_gc"] = {
                "opened": self.sessions_opened,
                "closed": self.sessions_closed,
                "collected": self.sessions_collected,
                "active": len(self._sessions),
                "ttl_s": self.config.session_ttl_s,
            }
            return snapshot

    def report(self) -> str:
        """Human-readable service dashboard."""
        stats = self.stats()
        cache = stats["plan_cache"]
        sched = stats["scheduler"]
        lines = [
            f"queries {stats['queries']}  rejected {stats['rejected']}  "
            f"timeouts {stats['timeouts']}  retries {stats['retries']}  "
            f"sessions {len(stats['sessions'])}",
            f"latency p50 {stats['latency_p50']:.3f}s  "
            f"p95 {stats['latency_p95']:.3f}s  "
            f"mean compile {stats['mean_compile_seconds']:.3f}s  "
            f"mean queued {stats['mean_queue_seconds']:.3f}s",
            f"plan cache: {cache['hits']} hit(s) / {cache['misses']} miss(es) "
            f"({cache['hit_rate']:.1%}), {cache['entries']}/{cache['capacity']} "
            f"entries, {cache['evictions']} evicted, "
            f"{cache['invalidated']} invalidated",
            f"scheduler: {sched['max_concurrency']} gang(s), "
            f"queue peak {sched['queue_peak']}/{sched['queue_limit']}, "
            f"utilisation {sched['utilisation']:.1%} over {sched['clock']:.1f}s",
        ]
        errors = stats["estimate_errors"]
        if errors["operators"]:
            lines.append(
                f"estimates: {errors['operators']} operator(s), "
                f"mean q-error {errors['mean_q_error']:.2f}, "
                f"p95 {errors['q_error_p95']:.2f}, "
                f"worst {errors['worst_q_error']:.2f} "
                f"({errors['worst_operator']})"
            )
        return "\n".join(lines)
