"""Service-level metrics: per-session counters and latency percentiles.

Latencies here are the *client-observed* simulated latencies
(``QueryMetrics.elapsed_seconds``: compile + admission queueing +
possibly stretched execution), which is what a serving benchmark cares
about — not the dedicated-cluster times of the paper's figures.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..engine.metrics import QueryMetrics


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of ``values``;
    0.0 for an empty sequence."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass
class SessionStats:
    """Per-session counters kept by the service facade."""

    queries: int = 0
    cache_hits: int = 0
    rejected: int = 0
    timeouts: int = 0
    retries: int = 0
    elapsed_seconds: float = 0.0
    queue_seconds: float = 0.0


@dataclass
class ServiceMetrics:
    """Aggregated serving metrics across all sessions."""

    latencies: List[float] = field(default_factory=list)
    compile_latencies: List[float] = field(default_factory=list)
    queue_latencies: List[float] = field(default_factory=list)
    per_session: Dict[str, SessionStats] = field(default_factory=dict)
    rejected: int = 0
    timeouts: int = 0
    retries: int = 0
    #: per-operator cardinality q-errors collected from query traces
    q_errors: List[float] = field(default_factory=list)
    worst_q_error: float = 0.0
    worst_q_error_operator: str = ""
    #: every trace operator seen, whether or not it carried a q-error —
    #: the denominator of the annotated-coverage ratio. Operators with
    #: no q-error were either never annotated with an estimate or were
    #: skipped by the executor (LIMIT 0 short-circuit), and a mean over
    #: only the annotated ones silently overstates coverage.
    trace_operators: int = 0
    #: declared last so every earlier field is assigned during (exempt)
    #: construction; post-construction writes require the lock (see
    #: repro.service.locking)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def session(self, name: str) -> SessionStats:
        with self._lock:
            stats = self.per_session.get(name)
            if stats is None:
                stats = self.per_session[name] = SessionStats()
            return stats

    def observe(self, session_name: str, metrics: QueryMetrics, cache_hit: bool) -> None:
        with self._lock:
            self.latencies.append(metrics.elapsed_seconds)
            self.compile_latencies.append(metrics.compile_seconds)
            self.queue_latencies.append(metrics.queue_seconds)
            stats = self.session(session_name)
            stats.queries += 1
            stats.cache_hits += int(cache_hit)
            stats.elapsed_seconds += metrics.elapsed_seconds
            stats.queue_seconds += metrics.queue_seconds
            if metrics.trace is not None:
                for node in metrics.trace.walk():
                    self.trace_operators += 1
                    q_error = node.q_error
                    if q_error is None:
                        continue
                    self.q_errors.append(q_error)
                    if q_error > self.worst_q_error:
                        self.worst_q_error = q_error
                        self.worst_q_error_operator = node.name

    def observe_rejection(self, session_name: str) -> None:
        with self._lock:
            self.rejected += 1
            self.session(session_name).rejected += 1

    def observe_timeout(self, session_name: str) -> None:
        with self._lock:
            self.timeouts += 1
            self.session(session_name).timeouts += 1

    def observe_retry(self, session_name: str) -> None:
        with self._lock:
            self.retries += 1
            self.session(session_name).retries += 1

    @property
    def queries(self) -> int:
        return len(self.latencies)

    @property
    def latency_p50(self) -> float:
        return percentile(self.latencies, 50.0)

    @property
    def latency_p95(self) -> float:
        return percentile(self.latencies, 95.0)

    @property
    def mean_compile_seconds(self) -> float:
        if not self.compile_latencies:
            return 0.0
        return sum(self.compile_latencies) / len(self.compile_latencies)

    @property
    def mean_queue_seconds(self) -> float:
        if not self.queue_latencies:
            return 0.0
        return sum(self.queue_latencies) / len(self.queue_latencies)

    @property
    def mean_q_error(self) -> float:
        # q-errors are >= 1.0 by construction, so the empty aggregate
        # is the identity (perfect estimates), not an impossible 0.0
        if not self.q_errors:
            return 1.0
        return sum(self.q_errors) / len(self.q_errors)

    @property
    def q_error_p95(self) -> float:
        if not self.q_errors:
            return 1.0
        return percentile(self.q_errors, 95.0)

    @property
    def estimate_coverage(self) -> float:
        """Fraction of trace operators that carried a cardinality
        q-error; 1.0 with no operators seen (vacuously full coverage,
        so an idle service doesn't read as uninstrumented)."""
        if self.trace_operators == 0:
            return 1.0
        return len(self.q_errors) / self.trace_operators

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "mean_compile_seconds": self.mean_compile_seconds,
            "mean_queue_seconds": self.mean_queue_seconds,
            "estimate_errors": {
                "operators": len(self.q_errors),
                "trace_operators": self.trace_operators,
                "coverage": self.estimate_coverage,
                "mean_q_error": self.mean_q_error,
                "q_error_p95": self.q_error_p95,
                "worst_q_error": self.worst_q_error,
                "worst_operator": self.worst_q_error_operator,
            },
            "sessions": {
                name: {
                    "queries": stats.queries,
                    "cache_hits": stats.cache_hits,
                    "rejected": stats.rejected,
                    "timeouts": stats.timeouts,
                    "retries": stats.retries,
                    "elapsed_seconds": stats.elapsed_seconds,
                    "queue_seconds": stats.queue_seconds,
                }
                for name, stats in sorted(self.per_session.items())
            },
        }
