"""Columnar value representation shared by the batch execution path.

A :class:`ColumnData` holds one column of a batch: a numpy array plus an
optional null mask. Columns whose values are homogeneous Python scalars
are stored in typed arrays (``float64``/``int64``/``bool_``) so that
expression evaluation can run as numpy kernels; everything else — SQL
NULLs, strings, VECTOR/MATRIX/LABELED_SCALAR cells, mixed int/float
columns — stays in an ``object`` array and is processed by per-row
fallback loops that call exactly the same Python code the row-at-a-time
interpreter runs.

The invariant that makes the row/batch equivalence contract hold (see
``docs/ENGINE.md``) is that materializing a column back to Python values
(:meth:`ColumnData.pylist`) is lossless: ``float64 -> float``,
``int64 -> int`` and ``bool_ -> bool`` conversions are exact, and object
columns return the original objects untouched. In particular the runtime
distinction between Python ``int`` and ``float`` values — which decides
SQL division semantics and hash placement — is preserved, because a
column is only promoted to a typed array when every value has exactly
the same Python scalar type.

This module deliberately imports nothing from ``repro.engine`` or
``repro.plan`` so both layers can use it without import cycles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: int64 bound under which vectorized integer add/sub cannot overflow
#: (one binary op over two operands below 2**62 stays inside int64).
_INT_ADD_BOUND = 2**62
#: product bound for vectorized integer multiplication.
_INT_MUL_BOUND = 2**63


class ColumnData:
    """One column of a batch: values plus an optional null mask.

    ``data`` is a numpy array of length ``n``. ``nulls`` is either
    ``None`` (no SQL NULLs) or a boolean array marking NULL positions;
    for typed (non-object) arrays the data at null positions is
    unspecified and must never be read without consulting ``nulls``.
    Object arrays store ``None`` directly at null positions as well, so
    per-row loops can consume them without a mask.
    """

    __slots__ = ("data", "nulls", "_pylist")

    def __init__(self, data: np.ndarray, nulls: Optional[np.ndarray] = None):
        self.data = data
        if nulls is not None and not nulls.any():
            nulls = None
        self.nulls = nulls
        self._pylist: Optional[list] = None

    # -- classification -----------------------------------------------------

    @property
    def is_object(self) -> bool:
        return self.data.dtype == object

    @property
    def is_numeric(self) -> bool:
        """True for float64/int64 columns (vectorizable arithmetic)."""
        return self.data.dtype in (np.float64, np.int64)

    @property
    def is_bool(self) -> bool:
        return self.data.dtype == np.bool_

    def __len__(self) -> int:
        return int(self.data.shape[0])

    # -- construction -------------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence) -> "ColumnData":
        """Build a column from Python values, promoting to a typed array
        only when every value is exactly the same scalar type."""
        n = len(values)
        if n:
            first_type = type(values[0])
            if first_type in (float, int, bool) and all(
                type(value) is first_type for value in values
            ):
                if first_type is float:
                    return cls(np.asarray(values, dtype=np.float64))
                if first_type is bool:
                    return cls(np.asarray(values, dtype=np.bool_))
                try:
                    return cls(np.asarray(values, dtype=np.int64))
                except OverflowError:
                    pass  # arbitrary-precision ints stay objects
        data = np.empty(n, dtype=object)
        nulls = np.zeros(n, dtype=np.bool_)
        for i, value in enumerate(values):
            if value is None:
                nulls[i] = True
            else:
                data[i] = value
        return cls(data, nulls)

    @classmethod
    def constant(cls, value, n: int) -> "ColumnData":
        """A column repeating one value (literal / bound parameter)."""
        if value is None:
            return cls(np.empty(n, dtype=object), np.ones(n, dtype=np.bool_))
        value_type = type(value)
        if value_type is float:
            return cls(np.full(n, value, dtype=np.float64))
        if value_type is bool:
            return cls(np.full(n, value, dtype=np.bool_))
        if value_type is int and -_INT_ADD_BOUND < value < _INT_ADD_BOUND:
            return cls(np.full(n, value, dtype=np.int64))
        data = np.empty(n, dtype=object)
        data[:] = [value] * n
        return cls(data)

    @classmethod
    def from_object_array(cls, data: np.ndarray, nulls: Optional[np.ndarray] = None) -> "ColumnData":
        """Wrap an object array built by a per-row loop; positions not
        covered by the loop's mask hold ``None`` and are marked null."""
        if nulls is None:
            nulls = np.fromiter(
                (value is None for value in data), dtype=np.bool_, count=len(data)
            )
        return cls(data, nulls)

    # -- materialization ----------------------------------------------------

    def pylist(self) -> list:
        """The column as a list of Python values (``None`` for NULL).
        Cached; conversion from typed arrays is exact."""
        if self._pylist is None:
            values = self.data.tolist()
            if self.nulls is not None:
                for i in np.flatnonzero(self.nulls):
                    values[i] = None
            self._pylist = values
        return self._pylist

    def object_array(self) -> np.ndarray:
        """The column as an object array with ``None`` at nulls."""
        if self.is_object:
            return self.data
        out = np.empty(len(self), dtype=object)
        out[:] = self.pylist()
        return out

    def null_mask(self) -> np.ndarray:
        if self.nulls is not None:
            return self.nulls
        return np.zeros(len(self), dtype=np.bool_)

    # -- slicing ------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "ColumnData":
        return ColumnData(
            self.data[mask], None if self.nulls is None else self.nulls[mask]
        )

    def take(self, indices: np.ndarray) -> "ColumnData":
        return ColumnData(
            self.data[indices], None if self.nulls is None else self.nulls[indices]
        )

    @classmethod
    def concat(cls, columns: List["ColumnData"]) -> "ColumnData":
        if len(columns) == 1:
            return columns[0]
        datas = [column.data for column in columns]
        if any(column.data.dtype == object for column in columns) and not all(
            column.data.dtype == object for column in columns
        ):
            datas = [column.object_array() for column in columns]
        data = np.concatenate(datas)
        if any(column.nulls is not None for column in columns):
            nulls = np.concatenate([column.null_mask() for column in columns])
        else:
            nulls = None
        return cls(data, nulls)


def truth(column: ColumnData) -> np.ndarray:
    """Row-mode ``bool(value)`` per entry, with SQL NULL treated as
    false — the coercion filters and AND/OR apply to predicate values."""
    if column.is_bool:
        if column.nulls is None:
            return column.data
        return column.data & ~column.nulls
    if column.is_numeric:
        result = column.data != 0
        if column.nulls is not None:
            result &= ~column.nulls
        return result
    n = len(column)
    return np.fromiter(
        (bool(value) for value in column.pylist()), dtype=np.bool_, count=n
    )


def full_mask(mask: Optional[np.ndarray], n: int) -> np.ndarray:
    return np.ones(n, dtype=np.bool_) if mask is None else mask


def mask_indices(mask: Optional[np.ndarray], n: int):
    """Iteration order of a per-row fallback loop under a mask."""
    if mask is None:
        return range(n)
    return np.flatnonzero(mask)
