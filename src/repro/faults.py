"""Deterministic fault injection for the simulated cluster.

The paper's platform, SimSQL, runs on Hadoop precisely because MapReduce
gives it transparent task-level fault tolerance: a lost map output is
re-fetched from disk, a crashed task is re-executed from its inputs, and
stragglers are speculatively re-launched. This module supplies the
*failure side* of that story for the simulated cluster: a seeded
:class:`FaultPlan` describes which faults to inject, and a
:class:`FaultInjector` turns the plan into reproducible per-operator,
per-slot fault draws.

Determinism contract (see ``docs/FAULTS.md``):

* every draw is a pure function of ``(seed, fault kind, operator
  position in the plan, slot, attempt)`` — no global RNG state, so the
  same statement under the same plan always sees the same fault
  sequence, independent of what ran before it;
* faults perturb only the *simulated* timeline (and trigger genuine
  re-execution of exchange jobs); result rows and their ordering are
  bit-identical to a fault-free run.

Injection happens in :class:`repro.engine.executor.Executor`, which
consults the injector at operator boundaries; recovery time lands in
:class:`~repro.engine.metrics.QueryMetrics` as ``recovery_seconds`` /
``wasted_seconds`` / ``speculative_seconds`` plus a ``fault_events``
breakdown.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, and how hard — all seeded.

    Rates are per-opportunity probabilities: a *slot crash* is drawn
    once per (operator, busy slot, attempt); a *lost partition* once per
    checkpointed exchange output partition at consumption time; a
    *transient error* once per exchange job attempt; a *straggler* once
    per (operator, busy slot).
    """

    seed: int = 0
    #: probability a busy slot crashes partway through an operator
    slot_crash_rate: float = 0.0
    #: probability a checkpointed exchange output partition is lost
    #: before its consumer reads it (recomputed from lineage)
    lost_partition_rate: float = 0.0
    #: probability an exchange job attempt dies to a network error and
    #: the whole job is re-executed from its (checkpointed) inputs
    transient_error_rate: float = 0.0
    #: probability a busy slot runs slow by ``straggler_multiplier``
    straggler_rate: float = 0.0
    #: slowdown factor of a straggling slot
    straggler_multiplier: float = 6.0
    #: bounded retries: attempts per partition / exchange job before the
    #: query fails with an ExecutionError carrying operator context
    max_partition_retries: int = 3
    #: simulated seconds to notice a crashed slot (heartbeat timeout)
    crash_detection_s: float = 1.0
    #: speculatively re-launch straggler work on a backup slot
    speculation: bool = True
    #: the backup copy launches once a slot has run this multiple of the
    #: operator's typical (median busy-slot) time
    speculation_threshold: float = 2.0

    # -- storage faults (durability barriers; see docs/DURABILITY.md) ------
    #: kill the process at the k-th durability barrier (1-based): a WAL
    #: append, a checkpoint/segment atomic write, or a WAL truncation.
    #: Barriers are counted in commit order (writes are exclusively
    #: admitted), so the k-th barrier is the same operation every run.
    crash_at_barrier: Optional[int] = None
    #: what happens at that barrier: "crash" dies before any byte is
    #: written, "torn" durably writes a deterministic prefix of the
    #: pending bytes and then dies (a torn/short write), "enospc" raises
    #: ``OSError(ENOSPC)`` instead of dying (the statement fails, the
    #: process survives).
    crash_kind: str = "crash"
    #: flip one byte of the k-th durable *read* (1-based: checkpoint and
    #: WAL reads during recovery), exercising bit-rot detection.
    bitrot_at_read: Optional[int] = None

    def with_updates(self, **kwargs) -> "FaultPlan":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    @property
    def enabled(self) -> bool:
        """True when any *cluster* fault can actually fire."""
        return (
            self.slot_crash_rate > 0.0
            or self.lost_partition_rate > 0.0
            or self.transient_error_rate > 0.0
            or self.straggler_rate > 0.0
        )

    @property
    def storage_enabled(self) -> bool:
        """True when any *storage* fault (crash point, torn write,
        ENOSPC, bit-rot) is armed."""
        return self.crash_at_barrier is not None or self.bitrot_at_read is not None


#: the default injection used by ``repro-bench faults``: a cluster that
#: is unhealthy enough that every query sees faults, but recoverable
#: within the default retry budget
DEFAULT_FAULT_PLAN = FaultPlan(
    seed=0,
    slot_crash_rate=0.05,
    lost_partition_rate=0.05,
    transient_error_rate=0.05,
    straggler_rate=0.08,
)

_SCALE = float(2**64)


class FaultInjector:
    """Reproducible fault draws plus cumulative counters.

    Stateless with respect to the draws themselves (every decision is a
    hash of its coordinates — per-statement operator index, partition
    and attempt, never thread identity — so injection is independent of
    real scheduling), stateful only in the ``events`` counters the
    benchmark reads across queries. One injector is shared by every
    executor of a database, so the counters are guarded by a lock:
    concurrently admitted statements count faults at the same time.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: Dict[str, int] = {}
        #: durability barriers crossed (WAL appends, checkpoint/segment
        #: atomic writes, WAL truncations) — see :meth:`storage_barrier`
        self.barriers = 0
        #: durable reads performed (checkpoint + WAL recovery reads)
        self.durable_reads = 0
        self._lock = threading.Lock()

    # -- draws -------------------------------------------------------------

    def _uniform(self, kind: str, *coords: int) -> float:
        """A deterministic uniform in [0, 1) for one fault opportunity."""
        hasher = hashlib.blake2b(digest_size=8)
        hasher.update(struct.pack("<q", self.plan.seed))
        hasher.update(kind.encode("ascii"))
        for coord in coords:
            hasher.update(struct.pack("<q", coord))
        return int.from_bytes(hasher.digest(), "little") / _SCALE

    def count(self, kind: str, n: int = 1) -> None:
        with self._lock:
            self.events[kind] = self.events.get(kind, 0) + n

    def crash_fraction(
        self, op_index: int, slot: int, attempt: int
    ) -> Optional[float]:
        """If this (operator, slot) attempt crashes, the fraction of the
        attempt's work completed before the crash; ``None`` otherwise."""
        if self._uniform("crash", op_index, slot, attempt) >= self.plan.slot_crash_rate:
            return None
        return self._uniform("crash-frac", op_index, slot, attempt)

    def transient_error(self, op_index: int, attempt: int) -> bool:
        """Does this exchange job attempt die to a transient network
        error (forcing a genuine re-execution of the job)?"""
        return (
            self._uniform("transient", op_index, attempt)
            < self.plan.transient_error_rate
        )

    def partition_lost(self, op_index: int, slot: int) -> bool:
        """Is this checkpointed output partition lost before its
        consumer (operator ``op_index``) reads it?"""
        return (
            self._uniform("lost", op_index, slot) < self.plan.lost_partition_rate
        )

    def straggler_factor(self, op_index: int, slot: int) -> float:
        """Slowdown multiplier for one slot of one operator (1.0 when
        the slot is healthy)."""
        if self._uniform("straggle", op_index, slot) < self.plan.straggler_rate:
            return self.plan.straggler_multiplier
        return 1.0

    # -- storage faults (durability barriers) ------------------------------

    def storage_barrier(self) -> Optional[str]:
        """Called by the :class:`~repro.storage.durable.DurableFile`
        shim once per durability barrier, *before* any byte is written.
        Returns ``None`` (healthy) or the armed ``crash_kind``
        (``"crash"``/``"torn"``/``"enospc"``) when this barrier is the
        configured crash point. Barriers happen under exclusive
        admission, so the counter advances in commit order and the k-th
        barrier names the same operation on every run."""
        with self._lock:
            self.barriers += 1
            index = self.barriers
        if (
            self.plan.crash_at_barrier is not None
            and index == self.plan.crash_at_barrier
        ):
            self.count(f"storage-{self.plan.crash_kind}")
            return self.plan.crash_kind
        return None

    def torn_length(self, total: int) -> int:
        """How many of ``total`` pending bytes a torn write durably
        lands before the crash — a deterministic draw in ``[0, total)``
        keyed on the barrier index, so the torn prefix is reproducible
        and always strictly short."""
        if total <= 0:
            return 0
        with self._lock:
            index = self.barriers
        return min(total - 1, int(self._uniform("torn", index) * total))

    def corrupt_read(self, data: bytes) -> bytes:
        """Apply bit-rot to one durable read: when this is the k-th
        durable read and ``bitrot_at_read == k``, one deterministically
        chosen byte is inverted."""
        with self._lock:
            self.durable_reads += 1
            index = self.durable_reads
        if self.plan.bitrot_at_read != index or not data:
            return data
        self.count("storage-bitrot")
        position = int(self._uniform("bitrot", index) * len(data))
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        return bytes(corrupted)

    # -- reporting ---------------------------------------------------------

    @property
    def total_events(self) -> int:
        with self._lock:
            return sum(self.events.values())

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.events)
