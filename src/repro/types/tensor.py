"""VECTOR and MATRIX values.

These are thin, immutable-by-convention wrappers around numpy arrays. They
implement the paper's arithmetic semantics (section 3.2):

* ``+ - * /`` between two tensors of the same kind are element-wise and
  require matching shapes (``*`` on matrices is the Hadamard product);
* arithmetic between a scalar and a tensor applies the operation between
  the scalar and every entry;
* mixing a VECTOR with a MATRIX in arithmetic is an error.

Every VECTOR carries an integer label (default ``-1``) that the
``ROWMATRIX``/``COLMATRIX`` aggregates use to place it within a matrix
(section 3.3). There is no row/column-vector distinction; each operation
chooses its own interpretation (section 3.1).
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import RuntimeTypeError
from .labeled import DEFAULT_LABEL, LabeledScalar

Numeric = Union[int, float, LabeledScalar]


def _as_scalar(value) -> float:
    if isinstance(value, LabeledScalar):
        return value.value
    return float(value)


class Vector:
    """A dense vector of doubles with an integer label."""

    __slots__ = ("data", "label")

    def __init__(self, data: Iterable[float], label: int = DEFAULT_LABEL):
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 1:
            raise RuntimeTypeError(
                f"VECTOR requires 1-dimensional data, got shape {array.shape}"
            )
        self.data = array
        self.label = int(label)

    @property
    def length(self) -> int:
        return int(self.data.shape[0])

    def with_label(self, label: int) -> "Vector":
        return Vector(self.data, label=label)

    def copy(self) -> "Vector":
        return Vector(self.data.copy(), label=self.label)

    def _binary(self, other, op, reverse: bool = False):
        if isinstance(other, Matrix):
            raise RuntimeTypeError(
                "arithmetic between VECTOR and MATRIX is not defined; "
                "convert the vector with row_matrix()/col_matrix() first"
            )
        if isinstance(other, Vector):
            if other.length != self.length:
                raise RuntimeTypeError(
                    f"element-wise arithmetic on vectors of different "
                    f"lengths: {self.length} vs {other.length}"
                )
            left, right = self.data, other.data
        else:
            scalar = _as_scalar(other)
            left, right = self.data, scalar
        if reverse:
            left, right = right, left
        return Vector(op(left, right))

    def __add__(self, other):
        return self._binary(other, np.add)

    def __radd__(self, other):
        return self._binary(other, np.add, reverse=True)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return self._binary(other, np.subtract, reverse=True)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __rmul__(self, other):
        return self._binary(other, np.multiply, reverse=True)

    def __truediv__(self, other):
        return self._binary(other, np.divide)

    def __rtruediv__(self, other):
        return self._binary(other, np.divide, reverse=True)

    def __neg__(self):
        return Vector(-self.data, label=self.label)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Vector)
            and self.length == other.length
            and bool(np.array_equal(self.data, other.data))
        )

    def __hash__(self):
        return hash((self.length, self.data.tobytes()))

    def allclose(self, other: "Vector", rtol: float = 1e-9) -> bool:
        return self.length == other.length and bool(
            np.allclose(self.data, other.data, rtol=rtol)
        )

    def size_bytes(self) -> int:
        return 8 * self.length + 8

    def __repr__(self) -> str:
        label = f", label={self.label}" if self.label != DEFAULT_LABEL else ""
        return f"Vector({np.array2string(self.data, threshold=8)}{label})"


class Matrix:
    """A dense matrix of doubles."""

    __slots__ = ("data",)

    def __init__(self, data):
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 2:
            raise RuntimeTypeError(
                f"MATRIX requires 2-dimensional data, got shape {array.shape}"
            )
        self.data = array

    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def cols(self) -> int:
        return int(self.data.shape[1])

    @property
    def shape(self) -> tuple:
        return (self.rows, self.cols)

    def copy(self) -> "Matrix":
        return Matrix(self.data.copy())

    def _binary(self, other, op, reverse: bool = False):
        if isinstance(other, Vector):
            raise RuntimeTypeError(
                "arithmetic between MATRIX and VECTOR is not defined; "
                "convert the vector with row_matrix()/col_matrix() first"
            )
        if isinstance(other, Matrix):
            if other.shape != self.shape:
                raise RuntimeTypeError(
                    f"element-wise arithmetic on matrices of different "
                    f"shapes: {self.shape} vs {other.shape}"
                )
            left, right = self.data, other.data
        else:
            left, right = self.data, _as_scalar(other)
        if reverse:
            left, right = right, left
        return Matrix(op(left, right))

    def __add__(self, other):
        return self._binary(other, np.add)

    def __radd__(self, other):
        return self._binary(other, np.add, reverse=True)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return self._binary(other, np.subtract, reverse=True)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __rmul__(self, other):
        return self._binary(other, np.multiply, reverse=True)

    def __truediv__(self, other):
        return self._binary(other, np.divide)

    def __rtruediv__(self, other):
        return self._binary(other, np.divide, reverse=True)

    def __neg__(self):
        return Matrix(-self.data)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Matrix)
            and self.shape == other.shape
            and bool(np.array_equal(self.data, other.data))
        )

    def __hash__(self):
        return hash((self.shape, self.data.tobytes()))

    def allclose(self, other: "Matrix", rtol: float = 1e-9) -> bool:
        return self.shape == other.shape and bool(
            np.allclose(self.data, other.data, rtol=rtol)
        )

    def size_bytes(self) -> int:
        return 8 * self.rows * self.cols + 8

    def __repr__(self) -> str:
        return f"Matrix({np.array2string(self.data, threshold=8)})"


def zeros_vector(length: int) -> Vector:
    return Vector(np.zeros(length))


def zeros_matrix(rows: int, cols: int) -> Matrix:
    return Matrix(np.zeros((rows, cols)))
