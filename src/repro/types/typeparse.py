"""Parsing of type declarations such as ``MATRIX[10][]`` or ``VECTOR[100]``.

Used by the SQL parser for ``CREATE TABLE`` column types and by the public
API when declaring schemas from strings.
"""

from __future__ import annotations

import re

from ..errors import SqlSyntaxError
from .scalar import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    LABELED_SCALAR,
    STRING,
    DataType,
    MatrixType,
    VectorType,
)

_SCALARS = {
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "BOOLEAN": BOOLEAN,
    "STRING": STRING,
    "VARCHAR": STRING,
    "TEXT": STRING,
    "LABELED_SCALAR": LABELED_SCALAR,
}

_VECTOR_RE = re.compile(r"^VECTOR\s*\[\s*(\d*)\s*\]$", re.IGNORECASE)
_MATRIX_RE = re.compile(r"^MATRIX\s*\[\s*(\d*)\s*\]\s*\[\s*(\d*)\s*\]$", re.IGNORECASE)


def parse_type(text: str) -> DataType:
    """Parse a type declaration string into a :class:`DataType`.

    >>> parse_type("MATRIX[10][]")
    MATRIX[10][]
    >>> parse_type("VECTOR[100]")
    VECTOR[100]
    >>> parse_type("double")
    DOUBLE
    """
    stripped = text.strip()
    scalar = _SCALARS.get(stripped.upper())
    if scalar is not None:
        return scalar
    match = _VECTOR_RE.match(stripped)
    if match:
        length = int(match.group(1)) if match.group(1) else None
        return VectorType(length)
    match = _MATRIX_RE.match(stripped)
    if match:
        rows = int(match.group(1)) if match.group(1) else None
        cols = int(match.group(2)) if match.group(2) else None
        return MatrixType(rows, cols)
    if stripped.upper().startswith("VECTOR"):
        raise SqlSyntaxError(
            f"malformed VECTOR type {text!r}; expected VECTOR[n] or VECTOR[]"
        )
    if stripped.upper().startswith("MATRIX"):
        raise SqlSyntaxError(
            f"malformed MATRIX type {text!r}; expected MATRIX[r][c] with "
            f"either dimension optionally empty"
        )
    raise SqlSyntaxError(f"unknown type {text!r}")
