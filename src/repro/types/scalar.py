"""Data types for the extended relational model.

The paper adds three attribute types to SQL -- ``LABELED_SCALAR``,
``VECTOR`` and ``MATRIX`` -- alongside the usual scalar types. Types are
value objects: two ``MATRIX[10][20]`` instances compare equal.

Vector and matrix types carry *optional* dimensions. ``VECTOR[100]`` has a
known length; ``VECTOR[]`` leaves it unspecified and defers size checks to
run time (paper section 3.1). ``MATRIX[10][]`` fixes only the row count.

Each type knows its size in bytes, which is what makes the optimizer
"linear-algebra aware": the size of a ``MATRIX[100000][100]`` attribute
(80 MB) utterly dominates the width of the tuple that carries it (paper
section 4.1).
"""

from __future__ import annotations

from typing import Optional

#: Bytes per element; every vector/matrix element is a double (section 3.1).
ELEMENT_SIZE = 8

#: Fallback width used for a vector/matrix attribute whose dimensions are
#: unspecified in the schema and for which the catalog has no statistics.
DEFAULT_UNKNOWN_DIM = 100


class DataType:
    """Base class for all attribute types."""

    #: short upper-case name used in error messages and EXPLAIN output
    name = "UNKNOWN"

    def size_bytes(self) -> float:
        """Estimated width, in bytes, of one attribute of this type."""
        raise NotImplementedError

    def is_numeric(self) -> bool:
        return False

    def is_tensor(self) -> bool:
        """True for VECTOR and MATRIX types."""
        return False

    def __eq__(self, other) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:
        return self.name


class IntegerType(DataType):
    name = "INTEGER"

    def size_bytes(self) -> float:
        return 8

    def is_numeric(self) -> bool:
        return True


class DoubleType(DataType):
    name = "DOUBLE"

    def size_bytes(self) -> float:
        return 8

    def is_numeric(self) -> bool:
        return True


class BooleanType(DataType):
    name = "BOOLEAN"

    def size_bytes(self) -> float:
        return 1


class StringType(DataType):
    name = "STRING"

    def size_bytes(self) -> float:
        return 16


class LabeledScalarType(DataType):
    """A DOUBLE carrying an integer label, used to build vectors with
    ``VECTORIZE`` (paper section 3.3)."""

    name = "LABELED_SCALAR"

    def size_bytes(self) -> float:
        return 16

    def is_numeric(self) -> bool:
        return True


class VectorType(DataType):
    """``VECTOR[n]`` or ``VECTOR[]`` (length unspecified)."""

    name = "VECTOR"

    def __init__(self, length: Optional[int] = None):
        if length is not None and length <= 0:
            raise ValueError(f"vector length must be positive, got {length}")
        self.length = length

    def size_bytes(self) -> float:
        length = self.length if self.length is not None else DEFAULT_UNKNOWN_DIM
        # +8 for the implicit integer label every VECTOR carries
        return ELEMENT_SIZE * length + 8

    def is_numeric(self) -> bool:
        return True

    def is_tensor(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, VectorType) and self.length == other.length

    def __hash__(self) -> int:
        return hash(("VECTOR", self.length))

    def __repr__(self) -> str:
        return f"VECTOR[{self.length if self.length is not None else ''}]"


class MatrixType(DataType):
    """``MATRIX[r][c]`` with either dimension optionally unspecified."""

    name = "MATRIX"

    def __init__(self, rows: Optional[int] = None, cols: Optional[int] = None):
        for dim in (rows, cols):
            if dim is not None and dim <= 0:
                raise ValueError(f"matrix dimension must be positive, got {dim}")
        self.rows = rows
        self.cols = cols

    def size_bytes(self) -> float:
        rows = self.rows if self.rows is not None else DEFAULT_UNKNOWN_DIM
        cols = self.cols if self.cols is not None else DEFAULT_UNKNOWN_DIM
        return ELEMENT_SIZE * rows * cols + 8

    def is_numeric(self) -> bool:
        return True

    def is_tensor(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MatrixType)
            and self.rows == other.rows
            and self.cols == other.cols
        )

    def __hash__(self) -> int:
        return hash(("MATRIX", self.rows, self.cols))

    def __repr__(self) -> str:
        rows = self.rows if self.rows is not None else ""
        cols = self.cols if self.cols is not None else ""
        return f"MATRIX[{rows}][{cols}]"


#: Singleton instances for the fixed scalar types.
INTEGER = IntegerType()
DOUBLE = DoubleType()
BOOLEAN = BooleanType()
STRING = StringType()
LABELED_SCALAR = LabeledScalarType()


def common_numeric_type(left: DataType, right: DataType) -> Optional[DataType]:
    """The result type of arithmetic between two plain numeric scalars,
    or ``None`` if the pair is not a scalar/scalar combination.

    INTEGER op INTEGER stays INTEGER (so ``x.id/1000`` is integer division,
    as the paper's blocking query relies on); any DOUBLE or LABELED_SCALAR
    operand promotes the result to DOUBLE.
    """
    scalars = (IntegerType, DoubleType, LabeledScalarType)
    if not isinstance(left, scalars) or not isinstance(right, scalars):
        return None
    if isinstance(left, IntegerType) and isinstance(right, IntegerType):
        return INTEGER
    return DOUBLE
