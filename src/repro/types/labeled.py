"""The LABELED_SCALAR value: a double carrying an integer label.

``label_scalar(y_i, i)`` attaches the label ``i`` to the double ``y_i``;
the ``VECTORIZE`` aggregate then places each value at the position named
by its label (paper section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Label used when a label was never explicitly set.
DEFAULT_LABEL = -1


@dataclass(frozen=True)
class LabeledScalar:
    """An immutable (value, label) pair.

    Arithmetic behaves like arithmetic on the underlying double; the label
    of the labeled operand is preserved (left operand wins when both sides
    are labeled), so expressions like ``label_scalar(v, i) * 2`` keep their
    position for a later ``VECTORIZE``.
    """

    value: float
    label: int = DEFAULT_LABEL

    def __post_init__(self):
        if self.label < DEFAULT_LABEL:
            raise ValueError(f"label must be >= {DEFAULT_LABEL}, got {self.label}")

    def __float__(self) -> float:
        return float(self.value)

    def _coerce(self, other) -> float:
        if isinstance(other, LabeledScalar):
            return other.value
        return float(other)

    def __add__(self, other):
        return LabeledScalar(self.value + self._coerce(other), self.label)

    def __radd__(self, other):
        return LabeledScalar(self._coerce(other) + self.value, self.label)

    def __sub__(self, other):
        return LabeledScalar(self.value - self._coerce(other), self.label)

    def __rsub__(self, other):
        return LabeledScalar(self._coerce(other) - self.value, self.label)

    def __mul__(self, other):
        return LabeledScalar(self.value * self._coerce(other), self.label)

    def __rmul__(self, other):
        return LabeledScalar(self._coerce(other) * self.value, self.label)

    def __truediv__(self, other):
        return LabeledScalar(self.value / self._coerce(other), self.label)

    def __rtruediv__(self, other):
        return LabeledScalar(self._coerce(other) / self.value, self.label)

    def __neg__(self):
        return LabeledScalar(-self.value, self.label)

    def __repr__(self) -> str:
        return f"LabeledScalar({self.value!r}, label={self.label})"
