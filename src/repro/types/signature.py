"""Templated function type signatures (paper section 4.2).

Every built-in that consumes or produces vectors/matrices declares a
signature such as::

    matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]
    diag(MATRIX[a][a]) -> VECTOR[a]

where lower-case letters are *dimension variables*. Binding a signature
against the declared types of the actual arguments:

* binds each variable to the concrete dimension it meets;
* raises :class:`TypeCheckError` when a variable would need two different
  values, or when a concrete dimension in the signature conflicts with the
  arguments — this is the paper's compile-time size checking;
* leaves a variable unbound when the argument dimension is unspecified in
  the schema (``VECTOR[]``), in which case the check is deferred to run
  time and the corresponding result dimension is unknown.

The bound result type gives the optimizer the exact size of the function's
output, which drives size-aware plan costing (section 4.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import TypeCheckError
from .scalar import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    LABELED_SCALAR,
    STRING,
    DataType,
    DoubleType,
    IntegerType,
    LabeledScalarType,
    MatrixType,
    VectorType,
)

#: A dimension inside a signature: a concrete size, a variable name, or
#: None meaning "anything" (used rarely; variables are preferred).
SigDim = Union[int, str, None]


@dataclass(frozen=True)
class SigScalar:
    """A scalar parameter/result in a signature.

    ``kind`` is one of ``INTEGER``, ``DOUBLE``, ``BOOLEAN``, ``STRING``,
    ``LABELED_SCALAR`` or ``NUMERIC`` (any numeric scalar; arguments of
    integer type are implicitly promoted where a DOUBLE is expected).
    """

    kind: str

    def __repr__(self):
        return self.kind


@dataclass(frozen=True)
class SigVector:
    dim: SigDim

    def __repr__(self):
        return f"VECTOR[{_dim_str(self.dim)}]"


@dataclass(frozen=True)
class SigMatrix:
    rows: SigDim
    cols: SigDim

    def __repr__(self):
        return f"MATRIX[{_dim_str(self.rows)}][{_dim_str(self.cols)}]"


SigType = Union[SigScalar, SigVector, SigMatrix]


def _dim_str(dim: SigDim) -> str:
    return "" if dim is None else str(dim)


_SCALAR_KINDS = {"INTEGER", "DOUBLE", "BOOLEAN", "STRING", "LABELED_SCALAR", "NUMERIC"}

_SIG_RE = re.compile(
    r"^\s*(?P<name>\w+)\s*\(\s*(?P<params>.*?)\s*\)\s*->\s*(?P<result>.+?)\s*$"
)
_SIG_VECTOR_RE = re.compile(r"^VECTOR\s*\[\s*([a-z]\w*|\d+)?\s*\]$", re.IGNORECASE)
_SIG_MATRIX_RE = re.compile(
    r"^MATRIX\s*\[\s*([a-z]\w*|\d+)?\s*\]\s*\[\s*([a-z]\w*|\d+)?\s*\]$", re.IGNORECASE
)


def _parse_sig_dim(token: Optional[str]) -> SigDim:
    if token is None or token == "":
        return None
    if token.isdigit():
        return int(token)
    return token  # a dimension variable such as 'a'


def parse_sig_type(text: str) -> SigType:
    """Parse one signature-side type, e.g. ``MATRIX[a][b]`` or ``DOUBLE``."""
    stripped = text.strip()
    upper = stripped.upper()
    if upper in _SCALAR_KINDS:
        return SigScalar(upper)
    match = _SIG_VECTOR_RE.match(stripped)
    if match:
        return SigVector(_parse_sig_dim(match.group(1)))
    match = _SIG_MATRIX_RE.match(stripped)
    if match:
        return SigMatrix(_parse_sig_dim(match.group(1)), _parse_sig_dim(match.group(2)))
    raise ValueError(f"malformed signature type {text!r}")


def _split_params(text: str) -> List[str]:
    """Split a parameter list on top-level commas (brackets never nest
    here, but commas can appear inside none of our types, so a plain split
    suffices after trimming)."""
    if not text.strip():
        return []
    return [part for part in (piece.strip() for piece in text.split(",")) if part]


class Signature:
    """A parsed, bindable function signature."""

    def __init__(self, name: str, params: Sequence[SigType], result: SigType):
        self.name = name
        self.params = list(params)
        self.result = result

    @classmethod
    def parse(cls, text: str) -> "Signature":
        """Parse e.g. ``"diag(MATRIX[a][a]) -> VECTOR[a]"``."""
        match = _SIG_RE.match(text)
        if not match:
            raise ValueError(f"malformed signature {text!r}")
        params = [parse_sig_type(part) for part in _split_params(match.group("params"))]
        result = parse_sig_type(match.group("result"))
        return cls(match.group("name"), params, result)

    @property
    def arity(self) -> int:
        return len(self.params)

    def bind(self, arg_types: Sequence[DataType]) -> DataType:
        """Type-check ``arg_types`` against this signature and return the
        concrete result type (with unknown dims where undecidable).

        Raises :class:`TypeCheckError` on any compile-time mismatch.
        """
        if len(arg_types) != len(self.params):
            raise TypeCheckError(
                f"{self.name} expects {len(self.params)} argument(s), "
                f"got {len(arg_types)}"
            )
        bindings: Dict[str, int] = {}
        for position, (param, arg) in enumerate(zip(self.params, arg_types), start=1):
            self._check_param(param, arg, position, bindings)
        return self._resolve_result(bindings)

    # -- checking one parameter ------------------------------------------

    def _check_param(
        self,
        param: SigType,
        arg: DataType,
        position: int,
        bindings: Dict[str, int],
    ) -> None:
        if isinstance(param, SigScalar):
            self._check_scalar(param, arg, position)
            return
        if isinstance(param, SigVector):
            if not isinstance(arg, VectorType):
                self._fail(position, param, arg)
            self._unify(param.dim, arg.length, position, "length", bindings)
            return
        if isinstance(param, SigMatrix):
            if not isinstance(arg, MatrixType):
                self._fail(position, param, arg)
            self._unify(param.rows, arg.rows, position, "row count", bindings)
            self._unify(param.cols, arg.cols, position, "column count", bindings)
            return
        raise AssertionError(f"unhandled signature type {param!r}")

    def _check_scalar(self, param: SigScalar, arg: DataType, position: int) -> None:
        kind = param.kind
        if kind == "NUMERIC":
            if not arg.is_numeric() or arg.is_tensor():
                self._fail(position, param, arg)
            return
        if kind == "DOUBLE":
            # integers and labeled scalars promote to double
            if not isinstance(arg, (DoubleType, IntegerType, LabeledScalarType)):
                self._fail(position, param, arg)
            return
        if kind == "INTEGER":
            if not isinstance(arg, IntegerType):
                self._fail(position, param, arg)
            return
        expected = {
            "BOOLEAN": BOOLEAN,
            "STRING": STRING,
            "LABELED_SCALAR": LABELED_SCALAR,
        }[kind]
        if arg != expected:
            self._fail(position, param, arg)

    def _fail(self, position: int, param: SigType, arg: DataType) -> None:
        raise TypeCheckError(
            f"{self.name}: argument {position} must be {param!r}, got {arg!r}"
        )

    def _unify(
        self,
        sig_dim: SigDim,
        arg_dim: Optional[int],
        position: int,
        what: str,
        bindings: Dict[str, int],
    ) -> None:
        if sig_dim is None:
            return
        if isinstance(sig_dim, int):
            if arg_dim is not None and arg_dim != sig_dim:
                raise TypeCheckError(
                    f"{self.name}: argument {position} {what} must be "
                    f"{sig_dim}, got {arg_dim}"
                )
            return
        # sig_dim is a dimension variable
        if arg_dim is None:
            return  # unknown at compile time; checked at run time
        bound = bindings.get(sig_dim)
        if bound is None:
            bindings[sig_dim] = arg_dim
        elif bound != arg_dim:
            raise TypeCheckError(
                f"{self.name}: dimension mismatch — variable '{sig_dim}' "
                f"bound to {bound} but argument {position} has {what} {arg_dim}"
            )

    # -- producing the result type ---------------------------------------

    def _resolve_dim(self, dim: SigDim, bindings: Dict[str, int]) -> Optional[int]:
        if dim is None:
            return None
        if isinstance(dim, int):
            return dim
        return bindings.get(dim)

    def _resolve_result(self, bindings: Dict[str, int]) -> DataType:
        result = self.result
        if isinstance(result, SigScalar):
            return {
                "INTEGER": INTEGER,
                "DOUBLE": DOUBLE,
                "BOOLEAN": BOOLEAN,
                "STRING": STRING,
                "LABELED_SCALAR": LABELED_SCALAR,
                "NUMERIC": DOUBLE,
            }[result.kind]
        if isinstance(result, SigVector):
            return VectorType(self._resolve_dim(result.dim, bindings))
        if isinstance(result, SigMatrix):
            return MatrixType(
                self._resolve_dim(result.rows, bindings),
                self._resolve_dim(result.cols, bindings),
            )
        raise AssertionError(f"unhandled signature result {result!r}")

    def __repr__(self) -> str:
        params = ", ".join(repr(param) for param in self.params)
        return f"{self.name}({params}) -> {self.result!r}"


def runtime_shape_check(
    signature: Signature, args: Sequence[object]
) -> Tuple[bool, str]:
    """Check *values* (Vector/Matrix instances) against a signature's
    dimension constraints; used for dims left unspecified in the schema.

    Returns ``(ok, message)``; ``message`` is empty when ``ok``.
    """
    from .tensor import Matrix, Vector  # local import avoids a cycle

    bindings: Dict[str, int] = {}

    def check(sig_dim: SigDim, actual: int, position: int, what: str):
        if sig_dim is None:
            return True, ""
        if isinstance(sig_dim, int):
            if actual != sig_dim:
                return False, (
                    f"{signature.name}: argument {position} {what} must "
                    f"be {sig_dim}, got {actual}"
                )
            return True, ""
        bound = bindings.get(sig_dim)
        if bound is None:
            bindings[sig_dim] = actual
            return True, ""
        if bound != actual:
            return False, (
                f"{signature.name}: dimension mismatch at run time — "
                f"'{sig_dim}' was {bound} but argument {position} has "
                f"{what} {actual}"
            )
        return True, ""

    for position, (param, arg) in enumerate(zip(signature.params, args), start=1):
        if isinstance(param, SigVector) and isinstance(arg, Vector):
            ok, message = check(param.dim, arg.length, position, "length")
            if not ok:
                return ok, message
        elif isinstance(param, SigMatrix) and isinstance(arg, Matrix):
            ok, message = check(param.rows, arg.rows, position, "row count")
            if not ok:
                return ok, message
            ok, message = check(param.cols, arg.cols, position, "column count")
            if not ok:
                return ok, message
    return True, ""
