"""Type system: scalar types, LABELED_SCALAR, VECTOR and MATRIX.

See the paper, sections 3.1 and 4.2.
"""

from .labeled import DEFAULT_LABEL, LabeledScalar
from .scalar import (
    BOOLEAN,
    DOUBLE,
    ELEMENT_SIZE,
    INTEGER,
    LABELED_SCALAR,
    STRING,
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
    LabeledScalarType,
    MatrixType,
    StringType,
    VectorType,
    common_numeric_type,
)
from .signature import Signature, SigMatrix, SigScalar, SigVector, runtime_shape_check
from .tensor import Matrix, Vector, zeros_matrix, zeros_vector
from .typeparse import parse_type

__all__ = [
    "BOOLEAN",
    "DEFAULT_LABEL",
    "DOUBLE",
    "ELEMENT_SIZE",
    "INTEGER",
    "LABELED_SCALAR",
    "STRING",
    "BooleanType",
    "DataType",
    "DoubleType",
    "IntegerType",
    "LabeledScalar",
    "LabeledScalarType",
    "Matrix",
    "MatrixType",
    "Signature",
    "SigMatrix",
    "SigScalar",
    "SigVector",
    "StringType",
    "Vector",
    "VectorType",
    "common_numeric_type",
    "parse_type",
    "runtime_shape_check",
    "zeros_matrix",
    "zeros_vector",
]
