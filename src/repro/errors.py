"""Exception hierarchy for the repro database system.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch a single base class. The split between compile-time and
run-time errors mirrors the paper: size mismatches between *declared*
MATRIX/VECTOR dimensions are compile errors (section 4.2), while mismatches
that involve dimensions left unspecified in the schema only surface at run
time (section 3.1).
"""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro system.

    Every error carries a machine-readable ``code`` and renders to a
    structured payload via :meth:`to_payload` — the same shape the
    network serving layer puts on the wire, so Python-API callers and
    HTTP clients see identical error structure.
    """

    #: machine-readable error code (stable across releases; the wire
    #: protocol and client retry logic key on it, not on the message)
    code = "internal_error"

    def to_payload(self) -> Dict[str, object]:
        """The structured ``{"code", "message", ...}`` rendering of this
        error; subclasses add their machine-readable fields."""
        return {"code": self.code, "message": str(self)}


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    code = "sql_syntax"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["line"] = self.line
        payload["column"] = self.column
        return payload


class CompileError(ReproError):
    """Semantic analysis failed: unknown name, bad types, arity, etc."""

    code = "compile_error"


class TypeCheckError(CompileError):
    """A type or declared vector/matrix dimension mismatch found at
    compile time."""

    code = "type_check"


class NameResolutionError(CompileError):
    """A table, column, or function name could not be resolved."""

    code = "name_resolution"


class CatalogError(ReproError):
    """Catalog-level problem: duplicate table, missing table, etc."""

    code = "catalog_error"


class DependentViewError(CatalogError):
    """DROP TABLE was refused because materialized views still depend on
    the table. There is no silent cascade: the caller must drop the
    dependents first. ``views`` lists their names (machine-readable, in
    catalog registration order)."""

    code = "dependent_views"

    def __init__(self, message: str, table: str = "", views: Optional[list] = None):
        self.table = table
        self.views = list(views or [])
        super().__init__(message)

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["table"] = self.table
        payload["views"] = self.views
        return payload


class DurabilityError(ReproError):
    """A write-ahead-log or checkpoint write failed (disk full, I/O
    error). The in-memory state of the statement that triggered it may
    have been applied, but the statement was **not acknowledged** and
    will not survive a crash; the original ``OSError`` is chained via
    ``__cause__``."""

    code = "durability_error"


class SnapshotCorruptError(ReproError):
    """A saved database snapshot (or WAL header) failed validation:
    truncated, checksum mismatch, or undecodable.

    ``path`` names the offending file and ``offset`` the byte position
    where validation failed (for a checksum mismatch, the start of the
    checksummed payload — the exact flipped byte is unknowable).
    """

    code = "snapshot_corrupt"

    def __init__(self, message: str, path: str = "", offset: int = 0):
        self.path = path
        self.offset = offset
        super().__init__(f"{message} (file {path!r}, byte offset {offset})")

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["path"] = self.path
        payload["offset"] = self.offset
        return payload


class SimulatedCrashError(BaseException):
    """An injected process crash at a durability barrier (see
    ``FaultPlan.crash_at_barrier``). Deliberately **not** a
    :class:`ReproError` — and not even an :class:`Exception` — so no
    recovery or serving layer can swallow it: it stands in for the
    process dying, and the only legitimate handler is the test harness
    that injected it."""


class ExecutionError(ReproError):
    """A query failed while executing.

    When the failure surfaces from inside a physical plan, the executor
    annotates the exception with the operator it failed in: ``operator``
    holds the operator's ``describe()`` string and ``plan_position`` its
    pre-order position in the physical plan. The original, unannotated
    exception is chained via ``__cause__`` (never flattened into the
    message), so fault-path failures stay diagnosable end to end.
    """

    code = "execution_error"

    #: ``describe()`` of the physical operator the error surfaced in
    operator: Optional[str] = None
    #: pre-order position of that operator in the physical plan
    plan_position: Optional[int] = None

    def __str__(self) -> str:
        base = super().__str__()
        if self.operator is None:
            return base
        return f"{base} [in {self.operator}, plan position {self.plan_position}]"

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        if self.operator is not None:
            payload["operator"] = self.operator
            payload["plan_position"] = self.plan_position
        return payload


class RuntimeTypeError(ExecutionError):
    """A dimension mismatch involving dimensions that were unspecified in
    the schema, discovered only when the offending tuples flowed through
    the plan (section 3.1 of the paper)."""

    code = "runtime_type"


class ResourceExhaustedError(ExecutionError):
    """The simulated cluster ran out of a resource (e.g. per-worker RAM),
    corresponding to the 'Fail' entries in the paper's Figure 3."""

    code = "resource_exhausted"


class TransientClusterError(ExecutionError):
    """An injected transient fault (network error, crashed slot) that the
    recovery machinery normally retries away; it only escapes to the
    caller — chained under a plain :class:`ExecutionError` — when the
    bounded retry budget is exhausted."""

    code = "transient_cluster"


class FaultRecoveryExhaustedError(ExecutionError):
    """Recovery gave up: a partition kept failing past the
    ``FaultPlan.max_partition_retries`` budget."""

    code = "fault_recovery_exhausted"


class ServiceError(ReproError):
    """Base class for errors raised by the multi-session query service."""

    code = "service_error"


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a query — the bounded admission queue
    is full, or the circuit breaker is shedding load.

    ``retry_after_s`` is a machine-readable backoff hint in simulated
    seconds: the service's estimate of when capacity frees up, computed
    from the current queue backlog (or the breaker's remaining cooldown).
    Clients should wait at least that long before resubmitting.
    """

    code = "service_overloaded"

    def __init__(
        self,
        message: str,
        queue_depth: int = 0,
        queue_limit: int = 0,
        retry_after_s: float = 0.0,
    ):
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s
        super().__init__(message)

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["retry_after_s"] = self.retry_after_s
        payload["queue_depth"] = self.queue_depth
        payload["queue_limit"] = self.queue_limit
        return payload


class QueryTimeoutError(ServiceError):
    """The query exceeded the service's per-query timeout, either
    waiting in the admission queue or executing."""

    code = "query_timeout"

    def __init__(self, message: str, timeout_s: float = 0.0, elapsed_s: float = 0.0):
        self.timeout_s = timeout_s
        self.elapsed_s = elapsed_s
        super().__init__(message)

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["timeout_s"] = self.timeout_s
        payload["elapsed_s"] = self.elapsed_s
        return payload


class SessionClosedError(ServiceError):
    """A statement was submitted on a session that has been closed."""

    code = "session_closed"


class CursorError(ServiceError):
    """Base class for streaming-cursor failures."""

    code = "cursor_error"


class CursorClosedError(CursorError):
    """A fetch on a cursor that was closed — explicitly, or because its
    owning session was closed or garbage-collected."""

    code = "cursor_closed"


class CursorInvalidatedError(CursorError):
    """A fetch on a cursor opened before a DDL/DML statement changed the
    shared catalog; the snapshot the cursor paginates can no longer be
    assumed consistent with the catalog, so the cursor is invalidated."""

    code = "cursor_invalidated"


class RateLimitedError(ServiceError):
    """A per-tenant token-bucket rate limit rejected the request.

    ``retry_after_s`` is the *real* (wall-clock) time until the bucket
    has refilled enough to admit one request.
    """

    code = "rate_limited"

    def __init__(self, message: str, tenant: str = "", retry_after_s: float = 0.0):
        self.tenant = tenant
        self.retry_after_s = retry_after_s
        super().__init__(message)

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["tenant"] = self.tenant
        payload["retry_after_s"] = self.retry_after_s
        return payload
