"""Exception hierarchy for the repro database system.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch a single base class. The split between compile-time and
run-time errors mirrors the paper: size mismatches between *declared*
MATRIX/VECTOR dimensions are compile errors (section 4.2), while mismatches
that involve dimensions left unspecified in the schema only surface at run
time (section 3.1).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro system."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class CompileError(ReproError):
    """Semantic analysis failed: unknown name, bad types, arity, etc."""


class TypeCheckError(CompileError):
    """A type or declared vector/matrix dimension mismatch found at
    compile time."""


class NameResolutionError(CompileError):
    """A table, column, or function name could not be resolved."""


class CatalogError(ReproError):
    """Catalog-level problem: duplicate table, missing table, etc."""


class ExecutionError(ReproError):
    """A query failed while executing."""


class RuntimeTypeError(ExecutionError):
    """A dimension mismatch involving dimensions that were unspecified in
    the schema, discovered only when the offending tuples flowed through
    the plan (section 3.1 of the paper)."""


class ResourceExhaustedError(ExecutionError):
    """The simulated cluster ran out of a resource (e.g. per-worker RAM),
    corresponding to the 'Fail' entries in the paper's Figure 3."""


class ServiceError(ReproError):
    """Base class for errors raised by the multi-session query service."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a query because the bounded admission
    queue is full; the client should back off and retry."""

    def __init__(self, message: str, queue_depth: int = 0, queue_limit: int = 0):
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        super().__init__(message)


class SessionClosedError(ServiceError):
    """A statement was submitted on a session that has been closed."""
