"""Common machinery for the comparison-platform simulators.

The paper benchmarks SimSQL against SystemML V0.9, SciDB V14.8 and Spark
mllib.linalg V1.6 on a 10-machine/80-core cluster. Those systems cannot
be run offline, so each comparator here is a **behavioural simulator**:

* ``compute(computation, workload)`` carries out the computation with
  real numpy arrays following that platform's *execution strategy* as the
  paper describes it (blocked fused ops for SystemML, chunked gemm
  pipelines for SciDB, RDD map/reduce for Spark), so results can be
  checked against ground truth;
* ``simulate(computation, n, d)`` prices the same strategy at any scale
  with explicit cost formulas over (n, d) and the platform's rate profile
  — aggregate FLOP/s, streaming, disk, network, startup overheads. The
  formulas are documented inline; the rate constants are calibrated
  against the 2016-era systems (see EXPERIMENTS.md for
  predicted-vs-paper tables).

Simulated times are returned as :class:`SimTime` with a labelled
breakdown, so benchmark output can show *why* a platform wins or loses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import ClusterConfig
from ..bench.workloads import Workload

COMPUTATIONS = ("gram", "regression", "distance")


@dataclass
class SimTime:
    """A simulated duration with a labelled breakdown."""

    breakdown: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, seconds: float) -> "SimTime":
        self.breakdown[label] = self.breakdown.get(label, 0.0) + seconds
        return self

    @property
    def total(self) -> float:
        return sum(self.breakdown.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{label}={seconds:.1f}s" for label, seconds in self.breakdown.items()
        )
        return f"SimTime({self.total:.1f}s: {parts})"


FAIL = None  # sentinel simulated time for runs the platform cannot finish


@dataclass
class Rates:
    """Aggregate cluster-wide rates for one platform."""

    flops: float  # dense-kernel FLOP/s across the cluster
    stream: float  # bytes/s of element churn (allocation, boxed adds, ...)
    disk: float  # bytes/s sequential storage bandwidth
    network: float  # bytes/s bisection bandwidth
    tuple_s: float  # seconds per tuple/record of fixed overhead (aggregate)
    startup_s: float  # fixed startup per distributed job/query


class Comparator:
    """Base class for platform simulators."""

    name = "platform"

    def __init__(self, config: ClusterConfig = None):
        self.config = config or ClusterConfig()

    # subclasses implement per-computation methods

    def simulate(self, computation: str, n: int, d: int) -> SimTime:
        return getattr(self, f"simulate_{computation}")(n, d)

    def compute(self, computation: str, workload: Workload):
        return getattr(self, f"compute_{computation}")(workload)


def data_bytes(n: int, d: int) -> float:
    """Raw size of an n x d dense double matrix."""
    return 8.0 * n * d
