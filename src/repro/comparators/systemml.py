"""SystemML V0.9 behavioural simulator.

Strategy, per the paper's section 5: data is stored and processed as
square blocks; DML scripts compile to Hadoop MR jobs, except that small
inputs run in **local (in-memory, single node) mode** — the paper's
star-marked cells. The three computations:

* gram — ``t(X) %*% X``: one pass over the blocks, each contributing
  ``t(Xb) %*% Xb``, partials combined in a reduce;
* regression — gram plus ``t(X) %*% y`` and a tiny local solve;
* distance — ``X %*% m %*% t(X)`` materializes the n x n distance matrix
  through the MR shuffle (80 GB at the paper's scale), then
  ``rowMins``/``rowIndexMax`` passes.

Rate constants model a 2016 Java-on-Hadoop stack; see EXPERIMENTS.md for
predicted-vs-paper numbers.
"""

from __future__ import annotations

import numpy as np

from ..bench.workloads import Workload
from .base import Comparator, Rates, SimTime, data_bytes

#: aggregate rates for SystemML on the paper's 10x8 cluster
RATES = Rates(
    flops=3.0e10,  # ~0.4 GFLOP/s/core Java block kernels
    stream=2.0e10,  # block allocation / copy churn
    disk=1.0e9,  # 10 machines x 100 MB/s HDFS
    network=1.25e9,  # 10 machines x 1 Gbit/s
    tuple_s=0.0,  # SystemML never goes tuple-at-a-time
    startup_s=30.0,  # Hadoop MR job submission + task ramp-up
)

#: Hadoop map-task scheduling/launch overhead (one task per 1000-row
#: block stripe; these add up on big inputs)
TASK_S = 0.02

#: inputs below this size run in local in-memory mode (single machine)
LOCAL_MODE_BYTES = 500e6
LOCAL_STARTUP_S = 4.0
LOCAL_FLOPS = 3.0e9  # one machine, 8 cores
LOCAL_DISK = 1.0e8

#: HDFS write replication: every MR job output is written 3x
HDFS_REPLICATION = 3.0

BLOCK = 1000


class SystemML(Comparator):
    name = "SystemML"

    # -- simulation -------------------------------------------------------------

    def _local(self, time: SimTime, read_bytes: float, flops: float) -> SimTime:
        time.add("startup", LOCAL_STARTUP_S)
        time.add("read", read_bytes / LOCAL_DISK)
        time.add("compute", flops / LOCAL_FLOPS)
        return time

    def simulate_gram(self, n: int, d: int) -> SimTime:
        time = SimTime()
        size = data_bytes(n, d)
        flops = 2.0 * n * d * d
        if size <= LOCAL_MODE_BYTES:
            return self._local(time, size, flops)
        time.add("startup", RATES.startup_s)
        time.add("tasks", max(n // BLOCK, 1) * TASK_S)
        time.add("read", size / RATES.disk)
        time.add("compute", flops / RATES.flops)
        # every block contributes a d x d partial into the shuffle
        partials = max(n // BLOCK, 1) * 8.0 * d * d
        time.add("shuffle", partials / RATES.network)
        time.add("write", 8.0 * d * d * HDFS_REPLICATION / RATES.disk)
        return time

    def simulate_regression(self, n: int, d: int) -> SimTime:
        time = SimTime()
        size = data_bytes(n, d) + 8.0 * n
        flops = 2.0 * n * d * d + 2.0 * n * d + (2.0 / 3.0) * d**3
        if size <= LOCAL_MODE_BYTES:
            return self._local(time, size, flops)
        # gram and X^T y fuse into one MR pass; the solve is trivial
        time.add("startup", RATES.startup_s)
        time.add("tasks", max(n // BLOCK, 1) * TASK_S)
        time.add("read", size / RATES.disk)
        time.add("compute", flops / RATES.flops)
        partials = max(n // BLOCK, 1) * 8.0 * (d * d + d)
        time.add("shuffle", partials / RATES.network)
        time.add("write", 8.0 * (d * d + d) * HDFS_REPLICATION / RATES.disk)
        return time

    def simulate_distance(self, n: int, d: int) -> SimTime:
        time = SimTime()
        dist_bytes = 8.0 * float(n) * float(n)
        flops = 2.0 * n * d * d + 2.0 * float(n) * float(n) * d
        time.add("startup", 4 * RATES.startup_s)  # multi-job DAG
        # the n x n result has (n/1000)^2 blocks; each is a task somewhere
        time.add("tasks", max(n // BLOCK, 1) ** 2 * TASK_S)
        time.add("read", data_bytes(n, d) / RATES.disk)
        time.add("compute", flops / RATES.flops)
        # the n x n all-distances matrix crosses the MR boundary: map
        # output spill, shuffle, reduce read, replicated HDFS write, and a
        # final rowMins/rowIndexMax scan
        time.add("spill", dist_bytes / RATES.disk)
        time.add("shuffle", dist_bytes / RATES.network)
        time.add("write", dist_bytes * HDFS_REPLICATION / RATES.disk)
        time.add("scan", dist_bytes / RATES.disk)
        time.add("churn", 2.0 * dist_bytes / RATES.stream)
        return time

    # -- real computation (strategy-faithful, numpy-backed) -----------------------

    @staticmethod
    def _blocks(X: np.ndarray):
        for start in range(0, X.shape[0], BLOCK):
            yield X[start : start + BLOCK]

    def compute_gram(self, workload: Workload) -> np.ndarray:
        total = np.zeros((workload.d, workload.d))
        for block in self._blocks(workload.X):
            total += block.T @ block
        return total

    def compute_regression(self, workload: Workload) -> np.ndarray:
        gram = np.zeros((workload.d, workload.d))
        xty = np.zeros(workload.d)
        offset = 0
        for block in self._blocks(workload.X):
            gram += block.T @ block
            xty += block.T @ workload.y[offset : offset + block.shape[0]]
            offset += block.shape[0]
        return np.linalg.solve(gram, xty)

    def compute_distance(self, workload: Workload) -> int:
        # all_dist = X %*% m %*% t(X); diag masked; rowMins; rowIndexMax
        X, metric = workload.X, workload.A
        all_dist = X @ metric @ X.T
        np.fill_diagonal(all_dist, np.inf)
        min_dist = all_dist.min(axis=1)
        return int(np.argmax(min_dist)) + 1
