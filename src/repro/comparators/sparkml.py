"""Spark V1.6 mllib.linalg behavioural simulator.

Strategy, per the paper's section 5 listings:

* gram / regression — the **vector-based** implementation: an RDD map
  producing a dense d x d outer product *per data point* (the paper's
  ``x.transpose.multiply(x)``), reduced with boxed ``zipped.map(_+_)``
  array additions. The per-point d x d materialization plus the boxed
  reduce is why Spark falls off a cliff at 1000 dimensions in Figures
  1-2 while staying competitive at 10-100.
* distance — the **BlockMatrix** implementation: ``X * m * X^T``
  materializes the n x n distance matrix across shuffles. With 80 GB of
  blocks flowing through Spark 1.6's shuffle/spill/GC machinery the
  pipeline runs at a very low effective throughput, which is why the
  paper's Figure 3 shows Spark at 75-80 minutes nearly independent of d.
"""

from __future__ import annotations

import math

import numpy as np

from ..bench.workloads import Workload
from .base import Comparator, Rates, SimTime, data_bytes

RATES = Rates(
    flops=4.0e10,  # 0.5 GFLOP/s/core JVM Breeze without native BLAS
    stream=1.6e10,  # 0.2 GB/s/core allocation + GC churn
    disk=1.0e9,
    network=1.25e9,
    tuple_s=0.0,
    startup_s=4.0,  # app/job startup in standalone mode
)

#: scheduling overhead per stage (task launch, serialization)
STAGE_S = 5.0

#: effective aggregate throughput of the Spark 1.6 BlockMatrix
#: multiply-shuffle-spill pipeline over n x n data (calibrated; the paper
#: observed ~75 min regardless of d)
BLOCKMATRIX_RATE = 1.7e7

BLOCK = 1024


class SparkMllib(Comparator):
    name = "Spark mllib"

    # -- simulation ----------------------------------------------------------

    def simulate_gram(self, n: int, d: int) -> SimTime:
        time = SimTime()
        time.add("startup", RATES.startup_s)
        time.add("stages", 3 * STAGE_S)
        time.add("read", data_bytes(n, d) / RATES.disk)
        outer_bytes = 8.0 * n * d * d
        time.add("outer-flops", (2.0 * n * d * d) / RATES.flops)
        time.add("alloc-churn", outer_bytes / RATES.stream)
        time.add("boxed-reduce", outer_bytes / RATES.stream)
        partitions = 2 * self.config.slots
        time.add("driver-collect", partitions * 8.0 * d * d / RATES.network)
        return time

    def simulate_regression(self, n: int, d: int) -> SimTime:
        time = self.simulate_gram(n, d)
        # the y join adds a stage; the final solve is driver-side and tiny
        time.add("stages", STAGE_S)
        time.add("xty", 2.0 * n * d / RATES.flops)
        time.add("solve", (2.0 / 3.0) * d**3 / (RATES.flops / self.config.slots))
        return time

    def simulate_distance(self, n: int, d: int) -> SimTime:
        time = SimTime()
        dist_bytes = 8.0 * float(n) * float(n)
        time.add("startup", RATES.startup_s)
        time.add("stages", 6 * STAGE_S)
        time.add("read", data_bytes(n, d) / RATES.disk)
        time.add(
            "gemm-flops",
            (2.0 * n * d * d + 2.0 * float(n) * float(n) * d) / RATES.flops,
        )
        # bigger d means bigger, fewer shuffle records for the same n x n
        # payload, which marginally helps the pipeline (the paper's times
        # mildly *decrease* with d)
        efficiency = 1.0 + 0.12 * math.log10(max(d / 10.0, 1.0))
        time.add("blockmatrix-pipeline", dist_bytes / (BLOCKMATRIX_RATE * efficiency))
        return time

    # -- real computation --------------------------------------------------------

    def compute_gram(self, workload: Workload) -> np.ndarray:
        # RDD map to per-point outer products, reduced pairwise
        partials = None
        for point in workload.X:
            outer = np.outer(point, point)  # x.transpose.multiply(x)
            partials = outer if partials is None else partials + outer
        return partials

    def compute_regression(self, workload: Workload) -> np.ndarray:
        gram = self.compute_gram(workload)
        xty = None
        for point, outcome in zip(workload.X, workload.y):
            term = point * outcome
            xty = term if xty is None else xty + term
        return np.linalg.solve(gram, xty)

    def compute_distance(self, workload: Workload) -> int:
        # BlockMatrix multiply X * m * X^T, then the paper's row-wise
        # min/max scan with the diagonal patched out
        X, metric = workload.X, workload.A
        n = workload.n
        blocks = range(0, n, BLOCK)
        xm = np.vstack([X[s : s + BLOCK] @ metric for s in blocks])
        dist = np.vstack([xm[s : s + BLOCK] @ X.T for s in blocks])
        # the paper's Scala patches dist(i)(i) with another entry before
        # taking the row min; masking with +inf is equivalent
        np.fill_diagonal(dist, np.inf)
        mins = dist.min(axis=1)
        return int(np.argmax(mins)) + 1
