"""Behavioural simulators of the paper's comparison platforms."""

from .base import COMPUTATIONS, FAIL, Comparator, Rates, SimTime, data_bytes
from .scidb import SciDB
from .sparkml import SparkMllib
from .systemml import SystemML

__all__ = [
    "COMPUTATIONS",
    "Comparator",
    "FAIL",
    "Rates",
    "SciDB",
    "SimTime",
    "SparkMllib",
    "SystemML",
    "data_bytes",
]
