"""SciDB V14.8 behavioural simulator.

Strategy, per the paper's section 5: arrays are stored in 1000-chunk
layout; AQL queries execute as pipelines of array operators backed by a
compiled C++ engine with ScaLAPACK ``gemm``. Every operator in the
paper's AQL listings (``transpose``, ``gemm``, ``filter``, grouped
``min``, ...) **materializes** its result array (the listings even use
``SELECT * INTO``), so operator inputs/outputs dominate at scale; there
is no Hadoop-style job startup, just a small per-query overhead.

The distance computation materializes the full n x n ``all_distance``
array (80 GB at paper scale), which is why SciDB's distance time is
nearly flat in d — exactly the paper's Figure 3 behaviour.
"""

from __future__ import annotations

import numpy as np

from ..bench.workloads import Workload
from .base import Comparator, Rates, SimTime, data_bytes

RATES = Rates(
    flops=2.4e11,  # ScaLAPACK dgemm, ~3 GFLOP/s/core sustained
    stream=4.0e10,  # compiled element churn
    disk=1.0e9,
    network=1.25e9,
    tuple_s=0.0,
    startup_s=1.0,  # per-query coordinator overhead
)

#: fixed cost per AQL operator (parse, plan, chunk-map bookkeeping)
PER_OP_S = 0.8

#: effective aggregate throughput of the transpose/gemm *regrid*
#: pipeline: chunk-granular scatter-gather into the ScaLAPACK layout
#: plus materialized temps — by far SciDB's dominant cost on big inputs
#: (calibrated against the paper's Figure 1-2 columns)
REGRID_RATE = 4.5e7

CHUNK = 1000


class SciDB(Comparator):
    name = "SciDB"

    # -- cost helpers -----------------------------------------------------------

    def _materialize(self, time: SimTime, label: str, nbytes: float) -> None:
        """Write an operator result and account for the next read."""
        time.add(label, 2.0 * nbytes / RATES.disk)

    def _redistribute(self, time: SimTime, label: str, nbytes: float) -> None:
        time.add(label, nbytes / RATES.network)

    # -- simulation --------------------------------------------------------------

    def simulate_gram(self, n: int, d: int) -> SimTime:
        time = SimTime()
        size = data_bytes(n, d)
        time.add("startup", RATES.startup_s + 3 * PER_OP_S)
        time.add("scan", size / RATES.disk)
        # transpose + gemm regrid the whole input through chunk-granular
        # scatter-gather (with materialized temps)
        time.add("regrid", size / REGRID_RATE)
        time.add("gemm-flops", 2.0 * n * d * d / RATES.flops)
        self._materialize(time, "result-io", 8.0 * d * d)
        return time

    def simulate_regression(self, n: int, d: int) -> SimTime:
        time = SimTime()
        size = data_bytes(n, d)
        # gram pipeline plus a second gemm for X^T y and a small solve;
        # the AQL script is several statements, each with fixed overhead
        time.add("startup", 2 * RATES.startup_s + 8 * PER_OP_S)
        time.add("scan", 2.0 * size / RATES.disk)
        # two gemms (X^T X and X^T y) each regrid the input
        time.add("regrid", 2.0 * size / REGRID_RATE)
        flops = 2.0 * n * d * d + 2.0 * n * d + (2.0 / 3.0) * d**3
        time.add("gemm-flops", flops / RATES.flops)
        self._materialize(time, "result-io", 8.0 * (d * d + d))
        return time

    def simulate_distance(self, n: int, d: int) -> SimTime:
        time = SimTime()
        size = data_bytes(n, d)
        dist_bytes = 8.0 * float(n) * float(n)
        # the paper's five AQL statements: two gemms into temp arrays, a
        # filtered 80 GB all_distance materialization, grouped min, max+join
        time.add("startup", 5 * RATES.startup_s + 10 * PER_OP_S)
        time.add("scan", 2.0 * size / RATES.disk)
        # both gemms regrid their (small) inputs ...
        time.add("regrid", 2.0 * size / REGRID_RATE)
        flops = 2.0 * n * d * d + 2.0 * float(n) * float(n) * d
        time.add("gemm-flops", flops / RATES.flops)
        self._materialize(time, "mxt-io", size)
        # ... but the n x n all_distance array is written and re-scanned
        self._materialize(time, "all-distance-io", dist_bytes)
        time.add("min-scan", dist_bytes / RATES.disk)
        time.add("churn", dist_bytes / RATES.stream)
        return time

    # -- real computation ----------------------------------------------------------

    def compute_gram(self, workload: Workload) -> np.ndarray:
        # gemm(transpose(x), x) with chunked temps
        xt = workload.X.T.copy()
        return xt @ workload.X

    def compute_regression(self, workload: Workload) -> np.ndarray:
        xt = workload.X.T.copy()
        gram = xt @ workload.X
        xty = xt @ workload.y
        return np.linalg.solve(gram, xty)

    def compute_distance(self, workload: Workload) -> int:
        # mxt <- gemm(m, transpose(x)); all_distance <- filter(gemm(x, mxt), t1<>t2)
        mxt = workload.A @ workload.X.T
        all_distance = workload.X @ mxt
        np.fill_diagonal(all_distance, np.inf)  # the t1 <> t2 filter
        per_point_min = all_distance.min(axis=1)
        best = per_point_min.max()
        return int(np.flatnonzero(per_point_min == best)[0]) + 1
