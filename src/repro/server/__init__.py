"""The network serving layer: HTTP/JSON access to a query service.

Everything below :mod:`repro.service` runs in-process and in simulated
time; this package is the real-time boundary — an asyncio HTTP/1.1
server (:class:`Server`) over real sockets, a worker-thread pool
driving the thread-safe :class:`~repro.service.QueryService`, opaque
streaming cursors, detached jobs, per-tenant token-bucket rate limits,
and structured error payloads with ``Retry-After`` on overload.

Quickstart::

    from repro import Database
    from repro.server import Server, ServerClient

    db = Database()
    ...  # create tables, load data
    with Server(db) as server:
        client = ServerClient(*server.address)
        columns, rows = client.query_all("SELECT * FROM t WHERE i < :k",
                                         {"k": 10})

See ``docs/SERVICE.md`` for the wire-protocol reference and
``examples/http_serving.py`` for a narrated tour.
"""

from .app import Server, ServerConfig, decode_cursor_token, encode_cursor_token
from .client import ServerClient, ServerError
from .jobs import Job, JobManager
from .protocol import (
    PROTOCOL_VERSION,
    canonical_json,
    canonical_result,
    decode_params,
    decode_value,
    encode_result,
    encode_value,
    error_body,
    retry_after_header,
    status_for_error,
)
from .ratelimit import TenantRateLimiter, TokenBucket

__all__ = [
    "Job",
    "JobManager",
    "PROTOCOL_VERSION",
    "Server",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "TenantRateLimiter",
    "TokenBucket",
    "canonical_json",
    "canonical_result",
    "decode_cursor_token",
    "decode_params",
    "decode_value",
    "encode_cursor_token",
    "encode_result",
    "encode_value",
    "error_body",
    "retry_after_header",
    "status_for_error",
]
