"""A minimal blocking HTTP/1.1 client for the serving layer.

Stdlib sockets only — one persistent keep-alive connection per client,
which is exactly what the open-loop benchmark needs (hundreds of
concurrent clients would exhaust ephemeral ports without reuse).

:class:`ServerClient` speaks the wire protocol of
:mod:`repro.server.app`: raw access via :meth:`request`, plus typed
helpers (:meth:`query`, :meth:`fetch`, :meth:`query_all`, job helpers).
Server-side errors come back as :class:`ServerError` carrying the
structured payload (``code``, ``message``, ``retry_after_s``, ...) and
the HTTP status, so callers branch on ``exc.code`` exactly like local
callers branch on exception type.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Tuple

from .protocol import decode_value


class ServerError(Exception):
    """A non-2xx response: HTTP status + the structured error payload."""

    def __init__(self, status: int, payload: Dict[str, object], headers=None):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        super().__init__(error.get("message", f"HTTP {status}"))
        self.status = status
        self.code = error.get("code", "unknown")
        self.payload = error
        self.headers = dict(headers or {})

    @property
    def retry_after_s(self) -> Optional[float]:
        header = self.headers.get("retry-after")
        if header is not None:
            return float(header)
        value = self.payload.get("retry_after_s")
        return float(value) if value is not None else None


class ServerClient:
    """One persistent connection to a :class:`repro.server.Server`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    # -- connection --------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._buffer = b""
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw http ----------------------------------------------------------

    def _read_until(self, sock: socket.socket, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head

    def _read_exact(self, sock: socket.socket, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        body, self._buffer = self._buffer[:count], self._buffer[count:]
        return body

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        """One round trip; returns (status, headers, decoded body)."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        sock = self._connect()
        try:
            sock.sendall(head + body)
            raw_head = self._read_until(sock, b"\r\n\r\n")
        except (ConnectionError, socket.timeout):
            # one reconnect: the server may have dropped an idle
            # keep-alive connection between requests
            self.close()
            sock = self._connect()
            sock.sendall(head + body)
            raw_head = self._read_until(sock, b"\r\n\r\n")
        lines = raw_head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw_body = self._read_exact(sock, length)
        if headers.get("connection") == "close":
            self.close()
        decoded = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        return status, headers, decoded

    def _call(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        status, headers, body = self.request(method, path, payload)
        if status >= 400:
            raise ServerError(status, body, headers)
        return body

    # -- protocol helpers --------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._call("GET", "/health")

    def stats(self) -> Dict[str, object]:
        return self._call("GET", "/stats")

    def open_session(
        self, name: Optional[str] = None, tenant: Optional[str] = None
    ) -> str:
        payload: Dict[str, object] = {}
        if name is not None:
            payload["name"] = name
        if tenant is not None:
            payload["tenant"] = tenant
        return self._call("POST", "/sessions", payload)["session"]

    def close_session(self, name: str) -> None:
        self._call("DELETE", f"/sessions/{name}")

    def query(
        self,
        sql: str,
        params: Optional[Dict[str, object]] = None,
        session: Optional[str] = None,
        tenant: Optional[str] = None,
        page_size: Optional[int] = None,
    ) -> Dict[str, object]:
        """Execute; returns the raw response (first page + cursor)."""
        payload: Dict[str, object] = {"sql": sql}
        if params:
            payload["params"] = params
        if session is not None:
            payload["session"] = session
        if tenant is not None:
            payload["tenant"] = tenant
        if page_size is not None:
            payload["page_size"] = page_size
        return self._call("POST", "/query", payload)

    def fetch(self, cursor: str, size: Optional[int] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"cursor": cursor}
        if size is not None:
            payload["size"] = size
        return self._call("POST", "/fetch", payload)

    def query_all(
        self,
        sql: str,
        params: Optional[Dict[str, object]] = None,
        session: Optional[str] = None,
        tenant: Optional[str] = None,
        page_size: Optional[int] = None,
    ) -> Tuple[List[str], List[List[object]]]:
        """Execute and drain every page; returns (columns, rows) with
        tagged values decoded back to Vector/Matrix/LabeledScalar."""
        response = self.query(
            sql, params, session=session, tenant=tenant, page_size=page_size
        )
        columns = response["columns"]
        rows = list(response["rows"])
        while not response["done"]:
            response = self.fetch(response["cursor"])
            rows.extend(response["rows"])
        return columns, [[decode_value(cell) for cell in row] for row in rows]

    def submit_job(
        self,
        sql: str,
        params: Optional[Dict[str, object]] = None,
        tenant: Optional[str] = None,
        page_size: Optional[int] = None,
    ) -> str:
        payload: Dict[str, object] = {"sql": sql}
        if params:
            payload["params"] = params
        if tenant is not None:
            payload["tenant"] = tenant
        if page_size is not None:
            payload["page_size"] = page_size
        return self._call("POST", "/jobs", payload)["job_id"]

    def poll_job(self, job_id: str) -> Dict[str, object]:
        return self._call("GET", f"/jobs/{job_id}")

    def delete_job(self, job_id: str) -> None:
        self._call("DELETE", f"/jobs/{job_id}")
