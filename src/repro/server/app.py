"""The asyncio HTTP serving layer in front of :class:`QueryService`.

A deliberately small HTTP/1.1 server — stdlib asyncio only, no web
framework — exposing the query service over real sockets:

======  ======================  ==========================================
method  path                    purpose
======  ======================  ==========================================
GET     /health                 liveness + protocol version
GET     /stats                  service + server counters (JSON)
POST    /sessions               open a named session (temp views, params)
DELETE  /sessions/<name>        close it (releases temp views + cursors)
POST    /query                  execute a statement; first page + cursor
POST    /fetch                  next page of a streaming cursor
POST    /jobs                   submit a detached job, return its id
GET     /jobs/<id>              poll a job (cursor token once done)
DELETE  /jobs/<id>              drop the job and release its result
======  ======================  ==========================================

**Concurrency model.** The event loop only parses HTTP and JSON; every
statement runs on a fixed pool of ``ClusterConfig.worker_threads`` real
threads (``run_in_executor``) driving the thread-safe
:class:`QueryService`. Worker threads genuinely overlap on read
statements: the service releases its lock around cluster execution and
the database's reader–writer admission gate runs concurrent SELECTs
against a stable catalog snapshot (DDL/DML still admits exclusively).
Inside each statement, operators additionally fan their partition work
out to the engine's task pool when
``ClusterConfig.intra_query_parallelism`` > 1. Two load-shedding layers
sit in front of the pool, both answering 429 with a ``Retry-After``
header:

* a server-wide in-flight cap (``ServerConfig.max_inflight``) bounding
  concurrently admitted requests, and
* per-tenant token buckets (``ServerConfig.rate_limit_qps``) on the
  statement-submitting endpoints.

Service-level overloads (admission queue full, circuit breaker open)
and timeouts surface the same way: the structured error payload in the
body, the HTTP status from :func:`~repro.server.protocol.status_for_error`.

**Streaming.** ``POST /query`` returns at most ``page_size`` rows plus
an opaque cursor token when more remain; ``POST /fetch`` pages through
the rest and closes the cursor on the final page. Anonymous queries run
on ephemeral sessions that are released the moment their last cursor
closes; named sessions persist until ``DELETE /sessions/<name>`` or TTL
garbage collection.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..db import Database
from ..errors import (
    CursorClosedError,
    ReproError,
    ServiceOverloadedError,
    SessionClosedError,
)
from ..service import QueryService, ServiceConfig
from .jobs import JobManager
from .protocol import (
    PROTOCOL_VERSION,
    canonical_json,
    decode_params,
    encode_result,
    encode_rows,
    error_body,
    retry_after_header,
    status_for_error,
)
from .ratelimit import TenantRateLimiter

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the network layer (the service has its own config)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``Server.address``
    port: int = 0
    #: requests being processed at once before the server sheds with 429
    max_inflight: int = 64
    #: per-tenant token-bucket refill rate (requests/second) on /query
    #: and /jobs; None disables rate limiting
    rate_limit_qps: Optional[float] = None
    #: bucket capacity (burst); defaults to the refill rate
    rate_limit_burst: Optional[float] = None
    #: Retry-After hint on in-flight-cap shedding (seconds)
    shed_retry_after_s: float = 0.05
    #: reject request bodies larger than this
    max_body_bytes: int = 8 * 1024 * 1024

    def with_updates(self, **kwargs) -> "ServerConfig":
        return replace(self, **kwargs)


class _HttpError(Exception):
    """Non-:class:`ReproError` protocol failures (bad JSON, bad route)."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


def encode_cursor_token(session_name: str, cursor_id: int) -> str:
    """Opaque cursor handle: the client never parses it, the server
    round-trips it back to (session, cursor)."""
    raw = canonical_json({"c": cursor_id, "s": session_name}).encode("ascii")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_cursor_token(token: str) -> Tuple[str, int]:
    try:
        padded = token + "=" * (-len(token) % 4)
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        payload = json.loads(raw.decode("ascii"))
        return str(payload["s"]), int(payload["c"])
    except (ValueError, KeyError, binascii.Error, UnicodeDecodeError):
        raise _HttpError(400, "bad_cursor", f"malformed cursor token {token!r}")


class Server:
    """One HTTP server bound to one :class:`QueryService`.

    Run it threaded (tests, examples, the open-loop benchmark)::

        server = Server(db, service_config=ServiceConfig(max_concurrency=4))
        server.start()                 # binds, spawns the loop thread
        host, port = server.address    # real socket address
        ...
        server.stop()

    or embed it in an existing event loop via :meth:`start_async` /
    :meth:`stop_async`.
    """

    def __init__(
        self,
        db: Database,
        config: Optional[ServerConfig] = None,
        service: Optional[QueryService] = None,
        service_config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServerConfig()
        self.service = service or QueryService(db, service_config)
        self.db = self.service.db
        self.executor = ThreadPoolExecutor(
            max_workers=self.db.config.worker_threads,
            thread_name_prefix="repro-server",
        )
        self.limiter = TenantRateLimiter(
            self.config.rate_limit_qps, self.config.rate_limit_burst
        )
        self.jobs = JobManager(self.service, self.executor)
        self._inflight = 0
        self.requests_total = 0
        self.shed_total = 0
        self.rate_limited_total = 0
        self.responses_by_status: Dict[int, int] = {}
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    # -- lifecycle ---------------------------------------------------------

    async def start_async(self) -> None:
        """Bind and start accepting on the current event loop."""
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = server.sockets[0].getsockname()
        with self._lock:
            self._asyncio_server = server
            self._loop = asyncio.get_running_loop()
            self.address = (sock[0], sock[1])

    async def stop_async(self) -> None:
        with self._lock:
            server = self._asyncio_server
            self._asyncio_server = None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.jobs.shutdown()
        self.executor.shutdown(wait=True)

    def start(self) -> "Server":
        """Run the event loop on a dedicated thread; returns once the
        socket is bound and ``self.address`` is valid."""
        ready = threading.Event()

        def loop_main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start_async())
            ready.set()
            loop.run_forever()
            # stop() path: drain callbacks scheduled during shutdown
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        thread = threading.Thread(
            target=loop_main, name="repro-server-loop", daemon=True
        )
        with self._lock:
            self._thread = thread
        thread.start()
        ready.wait()
        return self

    def stop(self) -> None:
        """Stop the threaded server and release every resource."""
        with self._lock:
            loop = self._loop
            thread = self._thread
            self._loop = None
            self._thread = None
        if loop is None:
            return

        async def shutdown() -> None:
            await self.stop_async()
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(shutdown(), loop)
        if thread is not None:
            thread.join(timeout=10)

    def drain(self, timeout: float = 30.0, checkpoint: bool = True) -> bool:
        """Graceful shutdown: stop accepting new connections, let
        in-flight requests and detached jobs finish, checkpoint a
        durable database, then stop. Returns False when the timeout
        expired with work still in flight (the server still stops —
        a durable database recovers the stragglers from its WAL).

        This is what the server entry point wires SIGTERM/SIGINT to.
        """
        import time

        with self._lock:
            loop = self._loop
            server = self._asyncio_server
            self._asyncio_server = None
        if server is not None and loop is not None:
            # close the listener only: existing connections (and the
            # worker pool behind them) keep running until they finish.
            # A starved loop must not wedge the drain — stop() below
            # tears the whole loop down regardless.
            try:
                asyncio.run_coroutine_threadsafe(
                    self._await_closed(server), loop
                ).result(timeout=10)
            except TimeoutError:
                pass
        deadline = time.monotonic() + timeout
        drained = False
        while time.monotonic() < deadline:
            with self._lock:
                inflight = self._inflight
            if inflight == 0 and self.jobs.active_count() == 0:
                drained = True
                break
            time.sleep(0.01)
        if checkpoint and self.db.durability is not None:
            self.db.checkpoint()
        self.stop()
        return drained

    @staticmethod
    async def _await_closed(server: asyncio.AbstractServer) -> None:
        server.close()
        await server.wait_closed()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def url(self) -> str:
        if self.address is None:
            raise RuntimeError("server is not started")
        return f"http://{self.address[0]}:{self.address[1]}"

    # -- http --------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # parse-level failures (oversized head, bad
                    # Content-Length) still get an HTTP response; the
                    # stream is unsynchronized afterwards, so close
                    writer.write(self._render(
                        exc.status,
                        {"error": {"code": exc.code, "message": str(exc)}},
                        {},
                        False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, extra = await self._dispatch(method, path, body)
                writer.write(self._render(status, payload, extra, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers_too_large", "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise ConnectionError("malformed request line")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, "bad_content_length",
                f"malformed Content-Length {raw_length!r}",
            )
        if length < 0:
            raise _HttpError(
                400, "bad_content_length",
                f"negative Content-Length {length}",
            )
        if length > self.config.max_body_bytes:
            raise _HttpError(413, "body_too_large", "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _render(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> bytes:
        body = canonical_json(payload).encode("utf-8")
        with self._lock:
            self.responses_by_status[status] = (
                self.responses_by_status.get(status, 0) + 1
            )
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra_headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request. Returns (status, payload, extra_headers)."""
        with self._lock:
            self.requests_total += 1
            if self._inflight >= self.config.max_inflight:
                self.shed_total += 1
                exc = ServiceOverloadedError(
                    f"server at max_inflight={self.config.max_inflight} "
                    f"concurrent requests",
                    retry_after_s=self.config.shed_retry_after_s,
                )
                return 429, error_body(exc), {
                    "Retry-After": retry_after_header(exc)
                }
            self._inflight += 1
        try:
            return await self._route(method, path, body)
        except _HttpError as exc:
            return exc.status, {
                "error": {"code": exc.code, "message": str(exc)}
            }, {}
        except ReproError as exc:
            headers: Dict[str, str] = {}
            status = status_for_error(exc)
            retry_after = retry_after_header(exc)
            if status == 429 and retry_after is not None:
                headers["Retry-After"] = retry_after
            if exc.code == "rate_limited":
                with self._lock:
                    self.rate_limited_total += 1
            return status, error_body(exc), headers
        except ValueError as exc:
            # client-triggerable decode failures (bare JSON arrays,
            # unknown $type tags, bad sizes) are the client's fault
            return 400, {
                "error": {"code": "bad_request", "message": str(exc)}
            }, {}
        except Exception as exc:
            # every request gets *a* response; an unexpected handler
            # failure must not silently drop the connection
            return 500, {
                "error": {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            }, {}
        finally:
            with self._lock:
                self._inflight -= 1

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/health" and method == "GET":
            return 200, self._health(), {}
        if path == "/stats" and method == "GET":
            return 200, await self._run(self.stats), {}
        if path == "/sessions" and method == "POST":
            return 200, await self._run(self._open_session, self._json(body)), {}
        if path.startswith("/sessions/") and method == "DELETE":
            name = path[len("/sessions/"):]
            return 200, await self._run(self._close_session, name), {}
        if path == "/query" and method == "POST":
            return 200, await self._run(self._query, self._json(body)), {}
        if path == "/fetch" and method == "POST":
            return 200, await self._run(self._fetch, self._json(body)), {}
        if path == "/jobs" and method == "POST":
            return 200, await self._run(self._submit_job, self._json(body)), {}
        if path.startswith("/jobs/") and method == "GET":
            return 200, await self._run(self._poll_job, path[len("/jobs/"):]), {}
        if path.startswith("/jobs/") and method == "DELETE":
            return 200, await self._run(self._delete_job, path[len("/jobs/"):]), {}
        known = {"/health", "/stats", "/sessions", "/query", "/fetch", "/jobs"}
        root = "/" + path.lstrip("/").split("/", 1)[0]
        if root in known or path in known:
            raise _HttpError(405, "method_not_allowed", f"{method} {path}")
        raise _HttpError(404, "not_found", f"no route for {method} {path}")

    async def _run(self, fn, *args):
        """Blocking work goes to the worker pool, not the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    @staticmethod
    def _json(body: bytes) -> Dict[str, object]:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, "bad_json", f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "bad_json", "request body must be an object")
        return payload

    @staticmethod
    def _positive_int(payload: Dict[str, object], key: str) -> Optional[int]:
        """An optional positive-integer field, validated before it can
        reach a cursor (where bad values raise non-ReproError)."""
        value = payload.get(key)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise _HttpError(
                400, "bad_request",
                f"{key!r} must be a positive integer, got {value!r}",
            )
        return value

    # -- handlers (worker threads) -----------------------------------------

    def _health(self) -> Dict[str, object]:
        with self._lock:
            inflight = self._inflight
        return {
            "status": "ok",
            "protocol_version": PROTOCOL_VERSION,
            "inflight": inflight,
        }

    def stats(self) -> Dict[str, object]:
        """Service stats plus the network layer's own counters."""
        snapshot = self.service.stats()
        with self._lock:
            snapshot["server"] = {
                "requests_total": self.requests_total,
                "shed_total": self.shed_total,
                "rate_limited_total": self.rate_limited_total,
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "worker_threads": self.db.config.worker_threads,
                "responses_by_status": {
                    str(status): count
                    for status, count in sorted(self.responses_by_status.items())
                },
            }
        snapshot["rate_limiter"] = self.limiter.stats()
        snapshot["jobs"] = self.jobs.stats()
        return snapshot

    def _open_session(self, payload: Dict[str, object]) -> Dict[str, object]:
        name = payload.get("name")
        tenant = payload.get("tenant")
        session = self.service.session(name, tenant=tenant)
        return {"session": session.name, "tenant": session.tenant}

    def _close_session(self, name: str) -> Dict[str, object]:
        session = self.service.sessions().get(name)
        if session is None:
            raise SessionClosedError(f"no active session named {name!r}")
        session.close()
        return {"session": name, "closed": True}

    def _resolve_session(self, payload: Dict[str, object]):
        """(session, ephemeral): the named session, or a fresh one that
        lives only as long as this request's result."""
        name = payload.get("session")
        if name is not None:
            session = self.service.sessions().get(name)
            if session is None:
                raise SessionClosedError(f"no active session named {name!r}")
            self.service.touch(session)
            return session, False
        tenant = payload.get("tenant")
        return self.service.session(tenant=tenant), True

    def _query(self, payload: Dict[str, object]) -> Dict[str, object]:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise _HttpError(400, "bad_request", "missing 'sql' string")
        params = decode_params(payload.get("params"))
        page_size = self._positive_int(payload, "page_size")
        session, ephemeral = self._resolve_session(payload)
        try:
            # rate limiting inside the try: a shed ephemeral session
            # must be closed, not left to accumulate in the service
            self.limiter.acquire(session.tenant)
            result = session.execute(sql, params)
        except ReproError:
            if ephemeral:
                session.close()
            raise
        cursor = session.open_cursor(result, page_size)
        if ephemeral:
            session.ephemeral = True
        rows = cursor.fetchmany()
        response = {
            "session": session.name,
            "columns": list(result.columns),
            "rows": encode_rows(rows),
            "row_count": len(result.rows),
            "done": cursor.exhausted,
        }
        if cursor.exhausted:
            cursor.close()
        else:
            response["cursor"] = encode_cursor_token(session.name, cursor.id)
        return response

    def _fetch(self, payload: Dict[str, object]) -> Dict[str, object]:
        token = payload.get("cursor")
        if not isinstance(token, str):
            raise _HttpError(400, "bad_request", "missing 'cursor' token")
        session_name, cursor_id = decode_cursor_token(token)
        session = self.service.sessions().get(session_name)
        if session is None:
            raise CursorClosedError(
                f"cursor {token!r}: owning session {session_name!r} is closed"
            )
        cursor = session.cursor(cursor_id)
        if cursor is None:
            raise CursorClosedError(f"cursor {token!r} is closed")
        size = self._positive_int(payload, "size")
        rows = cursor.fetchmany(size)
        response = {
            "session": session.name,
            "columns": cursor.columns,
            "rows": encode_rows(rows),
            "position": cursor.position,
            "done": cursor.exhausted,
        }
        if cursor.exhausted:
            cursor.close()
        else:
            response["cursor"] = token
        return response

    def _submit_job(self, payload: Dict[str, object]) -> Dict[str, object]:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise _HttpError(400, "bad_request", "missing 'sql' string")
        tenant = payload.get("tenant")
        page_size = self._positive_int(payload, "page_size")
        self.limiter.acquire(tenant or "anonymous")
        job = self.jobs.submit(
            sql,
            decode_params(payload.get("params")),
            tenant=tenant,
            page_size=page_size,
        )
        return {"job_id": job.id, "state": "queued"}

    def _poll_job(self, job_id: str) -> Dict[str, object]:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, "job_not_found", f"no job {job_id!r}")
        payload = job.describe()
        with job._lock:
            if job.state == "done" and job.cursor is not None:
                if not job.cursor.closed:
                    payload["cursor"] = encode_cursor_token(
                        job.session.name, job.cursor.id
                    )
                else:
                    payload["fetched"] = True
        return payload

    def _delete_job(self, job_id: str) -> Dict[str, object]:
        if not self.jobs.delete(job_id):
            raise _HttpError(404, "job_not_found", f"no job {job_id!r}")
        return {"job_id": job_id, "deleted": True}
