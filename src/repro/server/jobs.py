"""Detached jobs: submit now, poll later, stream the result.

``POST /jobs`` accepts a statement and returns immediately with a job
id; the statement runs on the server's worker pool against a dedicated
session (``job-<id>``). ``GET /jobs/<id>`` polls the state machine::

    queued ──worker picks up──▶ running ──▶ done   (result held, cursor
       │                           │               token ready to fetch)
       └───────────────────────────┴──────▶ error  (structured payload)

A finished job holds its result on the job's own session behind a
streaming cursor, so clients drain it with the same ``POST /fetch``
pagination as synchronous queries. ``DELETE /jobs/<id>`` (or manager
shutdown) closes the session, releasing the result and its cursor.

Thread-safe: jobs are created on the event loop's request path and
completed on worker threads; all state transitions hold the job's lock.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor
from typing import Dict, List, Optional

from ..errors import ReproError
from ..service import QueryService


class Job:
    """One detached statement and its lifecycle."""

    def __init__(self, job_id: str, sql: str, params: Dict[str, object]):
        self.id = job_id
        self.sql = sql
        self.params = params
        self.state = "queued"
        self.session = None
        self.result = None
        self.cursor = None
        #: structured error payload (repro.errors.ReproError.to_payload)
        self.error: Optional[Dict[str, object]] = None
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    @property
    def done(self) -> bool:
        with self._lock:
            return self.state in ("done", "error")

    def describe(self) -> Dict[str, object]:
        """The poll payload of ``GET /jobs/<id>``."""
        with self._lock:
            payload: Dict[str, object] = {
                "job_id": self.id,
                "state": self.state,
                "sql": self.sql,
            }
            if self.state == "done":
                payload["columns"] = list(self.result.columns)
                payload["row_count"] = len(self.result.rows)
            if self.error is not None:
                payload["error"] = self.error
            return payload


class JobManager:
    """Owns every detached job of one server."""

    def __init__(self, service: QueryService, executor: Executor):
        self.service = service
        self.executor = executor
        self._jobs: Dict[str, Job] = {}
        self._sequence = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    def submit(
        self,
        sql: str,
        params: Optional[Dict[str, object]] = None,
        tenant: Optional[str] = None,
        page_size: Optional[int] = None,
    ) -> Job:
        """Create the job, hand it to the worker pool, return at once."""
        with self._lock:
            self._sequence += 1
            job = Job(f"j{self._sequence}", sql, dict(params or {}))
            self._jobs[job.id] = job
            self.submitted += 1
        # the session is created eagerly so a bad tenant/session setup
        # fails at submit time, not at poll time
        session = self.service.session(f"job-{job.id}", tenant=tenant)
        with job._lock:
            job.session = session
            # a concurrent delete() in the window before this assignment
            # saw session=None and closed nothing; it is on us now
            deleted = job.state == "deleted"
        if deleted:
            session.close()
            return job
        self.executor.submit(self._run, job, page_size)
        return job

    def _run(self, job: Job, page_size: Optional[int]) -> None:
        with job._lock:
            if job.state != "queued":  # deleted before the worker got it
                return
            job.state = "running"
        try:
            result = job.session.execute(job.sql, job.params)
            with job._lock:
                if job.state != "running":  # deleted mid-flight
                    return
                job.result = result
                job.cursor = job.session.open_cursor(result, page_size)
                job.state = "done"
            with self._lock:
                self.completed += 1
        except Exception as exc:
            # anything — including non-ReproError bugs — must land the
            # job in 'error', or clients poll a stuck 'running' forever
            if isinstance(exc, ReproError):
                payload = exc.to_payload()
            else:
                payload = {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            with job._lock:
                if job.state != "running":  # deleted mid-flight
                    return
                job.error = payload
                job.state = "error"
            with self._lock:
                self.failed += 1
            job.session.close()

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def delete(self, job_id: str) -> bool:
        """Drop the job record and release its session (and result)."""
        with self._lock:
            job = self._jobs.pop(job_id, None)
        if job is None:
            return False
        with job._lock:
            # a queued/running worker observes this and abandons the job
            job.state = "deleted"
            session = job.session
        if session is not None and not session.closed:
            session.close()
        return True

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def active_count(self) -> int:
        """Jobs still queued or running (the drain path waits on this)."""
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state in ("queued", "running")
            )

    def shutdown(self) -> None:
        """Release every job (server close path)."""
        with self._lock:
            job_ids = list(self._jobs)
        for job_id in job_ids:
            self.delete(job_id)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "live": len(self._jobs),
                "states": states,
            }
