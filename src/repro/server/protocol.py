"""The wire protocol: JSON encoding of values, results, and errors.

Everything the server sends or accepts over HTTP is JSON. Linear-algebra
values — the paper's VECTOR / MATRIX attribute types plus labeled
scalars — do not exist in JSON, so they travel as ``$type``-tagged
objects::

    {"$type": "vector", "data": [1.0, 2.0], "label": 3}
    {"$type": "matrix", "data": [[1.0, 0.0], [0.0, 1.0]]}
    {"$type": "labeled", "value": 0.5, "label": 7}

The same tagging works in both directions: query parameters posted by a
client are decoded through :func:`decode_value`, result cells are
encoded through :func:`encode_value`.

**Canonical encoding.** :func:`canonical_json` serializes with sorted
keys, no whitespace, and Python's shortest-roundtrip float repr, so two
structurally equal results produce byte-identical strings. The
concurrency stress test compares serial and concurrent runs on these
strings — "bit-identical" is literal.

Errors cross the wire as the structured payload of
:meth:`repro.errors.ReproError.to_payload` (``code``, ``message``, plus
error-specific fields such as ``retry_after_s``), wrapped in
``{"error": ...}``. :func:`status_for_error` maps the exception to its
HTTP status; 429 responses additionally carry a ``Retry-After`` header.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

import numpy as np

from ..errors import (
    CatalogError,
    CompileError,
    CursorClosedError,
    CursorError,
    QueryTimeoutError,
    RateLimitedError,
    ReproError,
    ServiceOverloadedError,
    SessionClosedError,
    SqlSyntaxError,
)
from ..types import LabeledScalar, Matrix, Vector

#: protocol revision reported by ``GET /health``
PROTOCOL_VERSION = 1


# -- values ----------------------------------------------------------------


def encode_value(value):
    """One result cell (or parameter) as a JSON-compatible value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, LabeledScalar):
        return {
            "$type": "labeled",
            "value": float(value.value),
            "label": int(value.label),
        }
    if isinstance(value, Vector):
        return {
            "$type": "vector",
            "data": [float(x) for x in value.data],
            "label": int(value.label),
        }
    if isinstance(value, Matrix):
        return {
            "$type": "matrix",
            "data": [[float(x) for x in row] for row in value.data],
        }
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        if value.ndim == 1:
            return encode_value(Vector(value))
        if value.ndim == 2:
            return encode_value(Matrix(value))
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(value):
    """The inverse of :func:`encode_value` for client-posted values."""
    if isinstance(value, dict):
        tag = value.get("$type")
        if tag == "labeled":
            return LabeledScalar(float(value["value"]), int(value.get("label", -1)))
        if tag == "vector":
            return Vector(value["data"], label=int(value.get("label", -1)))
        if tag == "matrix":
            return Matrix(value["data"])
        raise ValueError(f"unknown $type tag {tag!r}")
    if isinstance(value, list):
        raise ValueError(
            "bare JSON arrays are ambiguous; tag vectors/matrices with $type"
        )
    return value


def decode_params(params: Optional[Dict[str, object]]) -> Dict[str, object]:
    return {name: decode_value(value) for name, value in (params or {}).items()}


# -- results ---------------------------------------------------------------


def encode_rows(rows: List[tuple]) -> List[List[object]]:
    return [[encode_value(cell) for cell in row] for row in rows]


def encode_result(columns: List[str], rows: List[tuple]) -> Dict[str, object]:
    """A full result (or one cursor page) as a wire object."""
    return {"columns": list(columns), "rows": encode_rows(rows)}


def canonical_json(payload) -> str:
    """Deterministic serialization: equal payloads, equal bytes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_result(columns: List[str], rows: List[tuple]) -> str:
    """The canonical string of a result, for bit-identity comparison
    between serial and concurrent executions."""
    return canonical_json(encode_result(columns, rows))


# -- errors ----------------------------------------------------------------

#: exception class -> HTTP status, most specific first (the first
#: matching isinstance wins)
_STATUS_MAP = (
    (RateLimitedError, 429),
    (ServiceOverloadedError, 429),
    (QueryTimeoutError, 504),
    (SessionClosedError, 410),
    (CursorClosedError, 410),
    (CursorError, 410),
    (SqlSyntaxError, 400),
    (CompileError, 400),
    (CatalogError, 400),
)


def status_for_error(exc: ReproError) -> int:
    for cls, status in _STATUS_MAP:
        if isinstance(exc, cls):
            return status
    return 500


def error_body(exc: ReproError) -> Dict[str, object]:
    """The wire form of a structured error: ``{"error": payload}``."""
    return {"error": exc.to_payload()}


def retry_after_header(exc: ReproError) -> Optional[str]:
    """The ``Retry-After`` value for 429 responses (seconds, decimal),
    or None when the error carries no hint."""
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is None:
        return None
    return f"{max(0.0, float(retry_after)):.3f}"
