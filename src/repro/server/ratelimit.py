"""Per-tenant token-bucket rate limiting for the serving layer.

The query service already protects the *cluster* (bounded admission
queue, circuit breaker, fair-share scheduling in simulated time); the
token bucket protects the *server* from any single tenant hogging the
request path in real time. Each tenant owns a bucket of ``burst``
tokens refilled at ``rate`` tokens per real second; a request costs one
token, and an empty bucket rejects with
:class:`~repro.errors.RateLimitedError` whose ``retry_after_s`` says
when the next token lands — the HTTP layer surfaces it as a 429 with a
``Retry-After`` header.

Thread-safe: buckets are consulted from every server worker thread. The
time source is injectable so tests can drive refills deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import RateLimitedError


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(
        self,
        rate: float,
        burst: float,
        time_source: Optional[Callable[[], float]] = None,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._time = time_source or time.monotonic
        self.tokens = self.burst
        self.last_refill = self._time()
        self.granted = 0
        self.rejected = 0
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last_refill = now

    def try_acquire(self, cost: float = 1.0) -> Optional[float]:
        """Take ``cost`` tokens. Returns None on success, otherwise the
        seconds until enough tokens will have refilled."""
        with self._lock:
            now = self._time()
            self._refill(now)
            if self.tokens >= cost:
                self.tokens -= cost
                self.granted += 1
                return None
            self.rejected += 1
            return (cost - self.tokens) / self.rate

    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._refill(self._time())
            return {
                "rate": self.rate,
                "burst": self.burst,
                "tokens": self.tokens,
                "granted": self.granted,
                "rejected": self.rejected,
            }


class TenantRateLimiter:
    """Lazily-created per-tenant buckets behind one acquire() call.

    ``rate``/``burst`` apply to every tenant alike (per-tenant
    overrides can be installed with :meth:`configure_tenant`). A rate of
    ``None`` disables limiting entirely — acquire always succeeds.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        time_source: Optional[Callable[[], float]] = None,
    ):
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else None)
        self._time = time_source or time.monotonic
        self._buckets: Dict[str, TokenBucket] = {}
        # assigned last: post-construction writes require the lock (see
        # repro.service.locking)
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def configure_tenant(self, tenant: str, rate: float, burst: float) -> None:
        """Install a tenant-specific bucket (replacing any existing)."""
        with self._lock:
            self._buckets[tenant] = TokenBucket(
                rate, burst, time_source=self._time
            )

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.rate, self.burst, time_source=self._time
                )
                self._buckets[tenant] = bucket
            return bucket

    def acquire(self, tenant: str) -> None:
        """Spend one token for ``tenant`` or raise
        :class:`RateLimitedError` with a ``retry_after_s`` hint."""
        if not self.enabled:
            return
        retry_after = self._bucket(tenant).try_acquire()
        if retry_after is not None:
            raise RateLimitedError(
                f"tenant {tenant!r} exceeded {self.rate:g} requests/s "
                f"(burst {self.burst:g}); retry in {retry_after:.3f}s",
                tenant=tenant,
                retry_after_s=retry_after,
            )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "burst": self.burst,
                "tenants": {
                    tenant: bucket.stats()
                    for tenant, bucket in sorted(self._buckets.items())
                },
            }
