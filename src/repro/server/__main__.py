"""The server entry point: ``python -m repro.server``.

Runs one :class:`~repro.server.Server` as a long-lived process and wires
the POSIX lifecycle around it:

* ``--data-dir DIR --durability wal`` opens (or crash-recovers) a
  durable database via :meth:`repro.Database.open`: an existing
  checkpoint + WAL in ``DIR`` is replayed before the socket binds, so a
  killed server comes back with every acknowledged statement intact.
* SIGTERM and SIGINT trigger a *graceful drain*
  (:meth:`~repro.server.Server.drain`): the listener closes, in-flight
  requests and detached jobs finish, a durable database takes a final
  checkpoint, then the process exits 0. A second signal while draining
  is ignored (the drain is already on its way); SIGKILL is of course
  not catchable — that path is covered by WAL recovery, and exercised
  by the kill-9 harness in ``tests/test_durability.py``.
* ``--init SCRIPT.sql`` seeds a fresh database from a SQL script before
  serving (ignored when the data dir recovered existing state).

The bound address is printed as ``listening on http://host:port`` on
stdout (flushed), so wrappers and tests can scrape it when ``--port 0``
picked an ephemeral port.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from ..config import ClusterConfig
from ..db import Database
from .app import Server, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="0 binds an ephemeral port (printed on stdout)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="durability directory (wal.log + checkpoint.db); implies "
        "--durability wal unless given explicitly",
    )
    parser.add_argument(
        "--durability", choices=("off", "wal"), default=None,
        help="crash-safety mode (default: wal when --data-dir is set)",
    )
    parser.add_argument(
        "--storage-mode", choices=("memory", "disk"), default="memory"
    )
    parser.add_argument("--slots", type=int, default=None)
    parser.add_argument(
        "--init", default=None, metavar="SCRIPT",
        help="SQL script to seed a fresh database (skipped on recovery)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds a SIGTERM/SIGINT drain waits for in-flight work",
    )
    parser.add_argument("--max-inflight", type=int, default=64)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    durability = args.durability
    if durability is None:
        durability = "wal" if args.data_dir else "off"
    if durability == "wal" and not args.data_dir:
        print("--durability wal requires --data-dir", file=sys.stderr)
        return 2
    updates = {
        "storage_mode": args.storage_mode,
        "durability_mode": durability,
        "data_dir": args.data_dir,
    }
    if args.slots is not None:
        updates["slots"] = args.slots
    config = ClusterConfig().with_updates(**updates)

    from ..storage.wal import has_existing_state

    recovering = bool(
        durability == "wal"
        and args.data_dir
        and has_existing_state(args.data_dir)
    )
    db = Database.open(config)
    if recovering and db.durability is not None:
        print(
            f"recovered {db.durability.records_replayed} WAL record(s) "
            f"from {args.data_dir}",
            flush=True,
        )
    if args.init and not recovering:
        with open(args.init, "r", encoding="utf-8") as handle:
            db.execute_script(handle.read())

    server = Server(
        db,
        config=ServerConfig(
            host=args.host, port=args.port, max_inflight=args.max_inflight
        ),
    )
    server.start()
    print(f"listening on {server.url}", flush=True)

    # signal handlers only set the event: the drain itself must not run
    # on the signal frame (it joins threads and talks to the event loop)
    shutdown = threading.Event()
    received = []

    def on_signal(signum, frame) -> None:
        received.append(signum)
        shutdown.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    shutdown.wait()
    name = signal.Signals(received[0]).name if received else "shutdown"
    print(f"{name}: draining", flush=True)
    drained = False
    try:
        drained = server.drain(timeout=args.drain_timeout, checkpoint=True)
    finally:
        # even a failed drain must not leave the process wedged: close
        # the database (joins its pools) and report what happened
        db.close()
        print(f"drained cleanly: {drained}", flush=True)
    return 0 if drained else 1


if __name__ == "__main__":
    sys.exit(main())
