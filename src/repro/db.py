"""The public database API.

:class:`Database` glues everything together: SQL text goes through the
parser, the binder (type checking, templated-signature binding), the
cost-based optimizer, the physical planner, and finally the simulated
cluster executor. Results come back as :class:`Result` objects carrying
both the rows and the execution metrics (simulated seconds, per-operator
breakdown).

Quickstart::

    from repro import Database
    import numpy as np

    db = Database()
    db.execute("CREATE TABLE v (vec VECTOR[])")
    db.load("v", [[np.random.randn(10)] for _ in range(100)])
    gram = db.execute("SELECT SUM(outer_product(vec, vec)) FROM v")
    print(gram.scalar())          # a 10x10 Matrix
    print(gram.metrics.total_seconds)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .admission import AdmissionGate
from .catalog import (
    Catalog,
    FeedbackStatistics,
    Schema,
    TableEntry,
    append_stats,
    collect_stats,
    join_fingerprint,
    predicate_fingerprint,
)
from .catalog.statistics import estimate_needs_feedback
from .config import ClusterConfig
from .engine import Cluster, Executor, PartitionedTable, QueryMetrics
from .errors import CompileError, ExecutionError
from .plan import Binder, CostModel, Optimizer, PhysicalPlanner
from .plan.logical import OutputColumn, ViewScanNode
from .plan.physical import PFilter, PHashJoin, PNestedLoopJoin, PScan, PViewScan
from .sql import ast, parse_script, parse_statement
from .storage import DiskPartitionedTable, StorageEngine
from .types import Matrix, Vector
from .views import ViewMatcher, ViewRegistry


class Result:
    """Rows plus metadata from executing one statement."""

    def __init__(
        self,
        columns: List[str],
        rows: List[tuple],
        metrics: Optional[QueryMetrics] = None,
    ):
        self.columns = columns
        self.rows = rows
        self.metrics = metrics or QueryMetrics()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} row(s) x "
                f"{len(self.columns)} column(s)"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List:
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"no result column named {name!r}") from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def profile(self) -> str:
        """Per-operator execution profile of this statement (simulated
        wall time, rows, network bytes, skew)."""
        return self.metrics.report()

    def __repr__(self) -> str:
        return f"Result({self.columns}, {len(self.rows)} row(s))"


def _convert_value(value):
    """Accept convenient Python/numpy values when loading data."""
    if isinstance(value, np.ndarray):
        if value.ndim == 1:
            return Vector(value)
        if value.ndim == 2:
            return Matrix(value)
        raise ExecutionError(f"cannot store a {value.ndim}-d array")
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list,)):
        array = np.asarray(value, dtype=np.float64)
        return _convert_value(array)
    return value


class Database:
    """An in-process, simulated-distributed database with the paper's
    linear algebra extensions."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        size_blind_optimizer: bool = False,
        execution_mode: Optional[str] = None,
        _recovery: bool = False,
    ):
        self.cluster = Cluster(config)
        self.config = self.cluster.config
        self.catalog = Catalog()
        #: cardinality feedback (docs/ENGINE.md, "Adaptive
        #: optimization"): observed per-operator row counts folded back
        #: from completed statements; consulted by the cost model when
        #: ``config.feedback_mode == "on"``, versioned so the service's
        #: plan cache drops plans built from stale statistics
        self.feedback = FeedbackStatistics()
        self.cost_model = CostModel(
            self.config, size_blind=size_blind_optimizer, feedback=self.feedback
        )
        #: segment files, buffer pool, and spill bookkeeping — shared by
        #: every table and executor of this database
        self.storage = StorageEngine(self.config)
        #: executor template: holds mode/storage/fault-injector; every
        #: statement executes on a ``fresh()`` copy so concurrently
        #: admitted statements never share per-statement state (lineage
        #: memos, checkpoints, trace bookkeeping)
        self._executor = Executor(self.cluster, execution_mode, storage=self.storage)
        # the storage engine's durability barriers (sealed segment
        # writes) draw from the same injector as the executor
        self.storage.set_injector(self._executor.injector)
        #: materialized views (docs/VIEWS.md): lifecycle, delta
        #: maintenance on base-table changes, and the counters behind
        #: ``QueryService.stats()["views"]``
        self.views = ViewRegistry(self)
        #: reader–writer statement admission: read-only statements run
        #: concurrently against a stable catalog, DDL/DML and config
        #: swaps take the exclusive path (see repro/admission.py). This
        #: replaces the old global ``_exec_lock`` that serialized every
        #: statement.
        self._admission = AdmissionGate()
        #: crash-safe durability (docs/DURABILITY.md): when the config
        #: says "wal", every committed DDL/DML appends a checksummed,
        #: fsynced record to ``data_dir/wal.log`` before the call
        #: returns; ``_recovery=True`` defers attaching until replay is
        #: done (repro.storage.wal.recover_database resumes it)
        self._durability = None
        #: reentrancy guard: only the *outermost* mutating operation of
        #: a statement logs (CTAS logs once, not once per inner
        #: create_table). Mutations are exclusively admitted, so a plain
        #: instance flag suffices.
        self._in_durable_op = False
        if self.config.durability_mode == "wal":
            from .storage.wal import DurabilityManager

            self._durability = DurabilityManager(self, attach=not _recovery)
        elif self.config.durability_mode != "off":
            raise ExecutionError(
                f"unknown durability_mode {self.config.durability_mode!r}; "
                "expected 'off' or 'wal'"
            )

    @property
    def execution_mode(self) -> str:
        """Which interpreter back end this database runs ("row" or
        "batch"); both produce identical rows and simulated metrics."""
        return self._executor.execution_mode

    def set_execution_mode(self, mode: str) -> None:
        """Switch interpreter back ends between statements. Takes the
        exclusive admission path: the executor template swap waits for
        in-flight statements to drain and is never observed mid-run."""
        with self._admission.exclusive():
            self._executor = Executor(
                self.cluster,
                mode,
                storage=self.storage,
                injector=self._executor.injector,
            )

    # -- persistence and durability -----------------------------------------------

    @property
    def durability(self):
        """The :class:`~repro.storage.wal.DurabilityManager` when
        ``durability_mode="wal"``, else None."""
        return self._durability

    def save(self, path: str) -> None:
        """Serialize schemas, data, and views to a single file —
        atomically (temp file + fsync + ``os.replace``), so a crash
        mid-save never leaves a torn file under ``path``. Restore with
        :meth:`Database.restore`. On a durable database, saving onto
        the checkpoint path (what :meth:`checkpoint` does) truncates
        the write-ahead log once the snapshot is down."""
        from .persist import save_database

        # shared admission: the snapshot must not interleave with a
        # writer, and the WAL truncation below must see the same state
        # the snapshot captured
        with self._admission.shared():
            save_database(self, path, injector=self.storage.injector)
            if self._durability is not None:
                self._durability.on_checkpoint(path)

    def checkpoint(self) -> str:
        """Atomically checkpoint a durable database into its
        ``data_dir`` and truncate the WAL; returns the checkpoint path.
        Recovery then replays only statements committed after this."""
        from .errors import ReproError

        if self._durability is None:
            raise ReproError(
                "checkpoint() requires durability_mode='wal' "
                "(use save(path) for a plain snapshot)"
            )
        self.save(self._durability.checkpoint_path)
        return self._durability.checkpoint_path

    @classmethod
    def restore(cls, path: str, config: Optional[ClusterConfig] = None) -> "Database":
        """Recreate a saved database (optionally onto a different
        cluster shape; data is re-partitioned). ``path`` may be a
        snapshot file, or a durability directory — the latter replays
        the write-ahead log on top of the latest checkpoint and keeps
        logging there (see docs/DURABILITY.md)."""
        from .persist import restore_database

        return restore_database(path, config)

    @classmethod
    def open(cls, config: ClusterConfig) -> "Database":
        """Open a durable database: recover ``config.data_dir`` when it
        already holds state, else start fresh. The crash-safe idiom for
        long-lived processes (the server entry point uses it)."""
        if config.durability_mode != "wal":
            return cls(config)
        from .storage.wal import DurabilityManager, has_existing_state

        data_dir = config.data_dir
        if data_dir and has_existing_state(data_dir):
            return cls.restore(data_dir, config)
        return cls(config)

    def close(self) -> None:
        """Release durability handles and storage-engine temp files.
        A durable database closed *without* a final :meth:`checkpoint`
        recovers through WAL replay, exactly like a crash."""
        if self._durability is not None:
            self._durability.close()
        self.storage.close()

    # -- write-ahead logging hooks -------------------------------------------------

    @contextmanager
    def _durable_root(self):
        """Yields True when the enclosed mutation is the outermost one
        of its statement and should be WAL-logged on success."""
        if (
            self._durability is None
            or not self._durability.active
            or self._in_durable_op
        ):
            yield False
            return
        self._in_durable_op = True
        try:
            yield True
        finally:
            self._in_durable_op = False

    def _log_durable(self, record: Dict[str, object]) -> None:
        """Append one committed operation to the WAL (the statement's
        acknowledgement point). Called with exclusive admission held, so
        WAL order is commit order."""
        record["catalog_version"] = self.catalog.version
        self._durability.log(record)

    def _apply_wal_record(self, record: Dict[str, object]) -> None:
        """Replay one WAL record during recovery (the manager is
        detached, so nothing is re-logged). Replay runs the same code
        paths as the original statement on the same cluster shape, which
        is what makes recovered rows and statistics bit-identical."""
        from .errors import ReproError
        from .persist import _thaw_value

        kind = record.get("kind")
        if kind == "stmt":
            frozen = record.get("params")
            params = (
                {key: _thaw_value(value) for key, value in frozen.items()}
                if frozen
                else None
            )
            self._execute_statement(record["ast"], params)
        elif kind == "create_table":
            self.create_table(
                record["table"],
                record["columns"],
                partition_by=record["partition_by"],
            )
        elif kind == "load":
            self.load(
                record["table"],
                [
                    tuple(_thaw_value(value) for value in row)
                    for row in record["rows"]
                ],
            )
        else:
            raise ReproError(f"unknown WAL record kind {kind!r}")

    # -- schema and loading ----------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence,
        partition_by: Optional[Sequence[str]] = None,
    ) -> TableEntry:
        """Create a table from ``(name, type)`` pairs (types may be
        strings like ``"MATRIX[10][]"``); optionally hash-partitioned on
        some columns at load time."""
        with self._admission.exclusive():
            with self._durable_root() as log:
                entry = self._create_table_locked(name, columns, partition_by)
                if log:
                    self._log_durable(
                        {
                            "kind": "create_table",
                            "table": entry.name,
                            "columns": [
                                (column.name, repr(column.data_type))
                                for column in entry.schema
                            ],
                            "partition_by": (
                                list(partition_by) if partition_by else None
                            ),
                        }
                    )
                return entry

    def _create_table_locked(
        self,
        name: str,
        columns: Sequence,
        partition_by: Optional[Sequence[str]] = None,
    ) -> TableEntry:
        schema = Schema(columns)
        entry = self.catalog.create_table(name, schema)
        if self.storage.mode == "disk":
            entry.storage = DiskPartitionedTable(
                schema,
                self.config.slots,
                partition_by=partition_by,
                engine=self.storage,
                name=name,
                segment_rows=self.config.segment_rows,
            )
        else:
            entry.storage = PartitionedTable(
                schema,
                self.config.slots,
                partition_by=partition_by,
                segment_rows=self.config.segment_rows,
            )
        return entry

    def load(self, name: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load rows (each a sequence of values; numpy arrays become
        vectors/matrices) and refresh the table's statistics."""
        with self._admission.exclusive():
            entry = self.catalog.table(name)
            converted = [
                tuple(_convert_value(value) for value in row) for row in rows
            ]
            with self._durable_root() as log:
                count = entry.storage.insert_many(converted)
                self._refresh_stats(entry, appended=converted)
                if log:
                    from .persist import _freeze_value

                    self._log_durable(
                        {
                            "kind": "load",
                            "table": entry.name,
                            "rows": [
                                tuple(_freeze_value(value) for value in row)
                                for row in converted
                            ],
                        }
                    )
            return count

    def _refresh_stats(
        self, entry: TableEntry, appended: Optional[List[tuple]] = None
    ) -> None:
        """Refresh ``entry``'s statistics after a DML statement. When the
        statement only appended rows, pass them via ``appended`` and the
        accumulator sets kept by ``collect_stats`` are updated in place
        instead of rescanning the whole table; deletes always rescan."""
        if appended is None or not append_stats(
            entry.stats, entry.schema, appended
        ):
            entry.stats = collect_stats(entry.schema, entry.storage.all_rows())
        # statistics feed refined types and size estimates into plans, so
        # every refresh invalidates cached plans that read this table
        # (the plan cache validates the per-table version)
        self.catalog.bump_table(entry.name)
        # materialized views over this table fold the delta (append) or
        # refresh/go stale (delete), per config.view_refresh_mode
        if appended is not None:
            self.views.on_table_appended(entry.name)
        else:
            self.views.on_table_changed(entry.name)
        self.catalog.bump_version()

    # -- SQL ----------------------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Dict[str, object]] = None
    ) -> Result:
        """Parse, plan and execute a single SQL statement."""
        statement = parse_statement(sql)
        return self._execute_statement(statement, params)

    def execute_script(
        self, sql: str, params: Optional[Dict[str, object]] = None
    ) -> List[Result]:
        """Execute a semicolon-separated script; returns one Result per
        statement."""
        return [
            self._execute_statement(statement, params)
            for statement in parse_script(sql)
        ]

    def explain(
        self,
        sql: str,
        params: Optional[Dict[str, object]] = None,
        verbose: bool = False,
    ) -> str:
        """The optimized logical and physical plans for a SELECT; with
        ``verbose=True`` every logical node is annotated with its
        estimated cardinality and row width — the size information the
        LA-aware optimizer plans with (section 4)."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("EXPLAIN supports SELECT statements only")
        with self._admission.shared():
            logical = self._plan_select(statement, params)
            physical = PhysicalPlanner(self.cost_model).plan(logical)
        cost_model = self.cost_model if verbose else None
        text = (
            "== logical ==\n"
            + logical.pretty(cost_model=cost_model)
            + "\n== physical ==\n"
            + physical.pretty()
        )
        if verbose:
            text += f"\n== estimated cost ==\n{self.cost_model.plan_cost(logical):.2f}s"
        return text

    def explain_analyze(
        self, sql: str, params: Optional[Dict[str, object]] = None
    ) -> str:
        """Execute a SELECT and render its physical plan with the cost
        model's estimated rows/bytes/seconds next to the measured
        actuals, plus a per-operator cardinality q-error column — the
        feedback loop that shows whether the LA-aware estimates the
        optimizer planned with (section 4) were right."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("EXPLAIN ANALYZE supports SELECT statements only")
        with self._admission.shared():
            logical = self._plan_select(statement, params)
            physical = self._plan_physical(logical)
            result = self._execute_physical(logical, physical)
        trace = result.metrics.trace
        assert trace is not None
        lines = [trace.render()]
        lines.append(
            f"delivered {len(result.rows)} row(s) in "
            f"{result.metrics.total_seconds:.3f} simulated s "
            f"({result.metrics.jobs} job(s))"
        )
        worst = trace.max_q_error()
        if worst is not None:
            lines.append(f"worst cardinality q-error {worst:.2f}")
        return "\n".join(lines)

    # -- statement dispatch ------------------------------------------------------

    def _execute_statement(
        self, statement: ast.Statement, params: Optional[Dict[str, object]]
    ) -> Result:
        # read-only statements overlap under shared admission; anything
        # that can mutate the catalog or table storage takes the
        # exclusive path (and bumps the catalog version, invalidating
        # cached plans)
        if isinstance(statement, (ast.SelectStatement, ast.UnionStatement)):
            with self._admission.shared():
                return self._dispatch_statement(statement, params)
        with self._admission.exclusive():
            with self._durable_root() as log:
                result = self._dispatch_statement(statement, params)
                if log:
                    from .persist import _freeze_value

                    frozen = (
                        {
                            key: _freeze_value(_convert_value(value))
                            for key, value in params.items()
                        }
                        if params
                        else None
                    )
                    # the statement is applied; appending this record is
                    # the acknowledgement point (returning == durable)
                    self._log_durable(
                        {"kind": "stmt", "ast": statement, "params": frozen}
                    )
                return result

    def _dispatch_statement(
        self, statement: ast.Statement, params: Optional[Dict[str, object]]
    ) -> Result:
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(statement, params)
        if isinstance(statement, ast.CreateTable):
            self.create_table(statement.name, statement.columns)
            return Result([], [])
        if isinstance(statement, ast.CreateTableAs):
            result = self._run_select(statement.query, params)
            logical = self._plan_select(statement.query, params)
            columns = [
                (column.name, column.data_type) for column in logical.columns
            ]
            self.create_table(statement.name, columns)
            entry = self.catalog.table(statement.name)
            entry.storage.insert_many(result.rows)
            self._refresh_stats(entry, appended=result.rows)
            return self._attach_maintenance(result)
        if isinstance(statement, ast.CreateView):
            if statement.temporary:
                raise CompileError(
                    "CREATE TEMPORARY VIEW is session-scoped; acquire a "
                    "session from Database.service() and run it there"
                )
            # bind once against the current catalog so errors surface now;
            # parameters may stay unbound until the view is queried
            binder = Binder(self.catalog, params, defer_params=True)
            plan = binder.bind_select(statement.query)
            if statement.column_names is not None and len(
                statement.column_names
            ) != len(plan.columns):
                raise CompileError(
                    f"view {statement.name!r}: {len(statement.column_names)} "
                    f"column name(s) for {len(plan.columns)} column(s)"
                )
            self.catalog.create_view(
                statement.name, statement.query, statement.column_names
            )
            return Result([], [])
        if isinstance(statement, ast.CreateMaterializedView):
            self.views.create(
                statement.name, statement.query, statement.column_names
            )
            return Result([], [])
        if isinstance(statement, ast.RefreshMaterializedView):
            self.views.refresh(statement.name)
            return Result([], [])
        if isinstance(statement, ast.DropMaterializedView):
            self.views.drop(statement.name, if_exists=statement.if_exists)
            return Result([], [])
        if isinstance(statement, ast.InsertValues):
            entry = self.catalog.table(statement.table)
            binder = Binder(self.catalog, params)
            rows = binder.bind_insert_rows(entry.schema.types, statement.rows)
            inserted = [tuple(row) for row in rows]
            entry.storage.insert_many(inserted)
            self._refresh_stats(entry, appended=inserted)
            return self._attach_maintenance(Result([], []))
        if isinstance(statement, ast.InsertSelect):
            return self._run_insert_select(statement, params)
        if isinstance(statement, ast.Delete):
            return self._run_delete(statement, params)
        if isinstance(statement, ast.UnionStatement):
            return self._run_union(statement, params)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, if_exists=statement.if_exists)
            return Result([], [])
        if isinstance(statement, ast.DropView):
            self.catalog.drop_view(statement.name, if_exists=statement.if_exists)
            return Result([], [])
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    # -- writes beyond INSERT ... VALUES -----------------------------------------

    def _run_insert_select(
        self, statement: ast.InsertSelect, params: Optional[Dict[str, object]]
    ) -> Result:
        entry = self.catalog.table(statement.table)
        result = self._run_select(statement.query, params)
        expected = entry.schema.types
        if result.rows and len(result.rows[0]) != len(expected):
            raise CompileError(
                f"INSERT INTO {statement.table}: query produces "
                f"{len(result.rows[0])} column(s), table has {len(expected)}"
            )
        from .types import DoubleType

        coerced = []
        for row in result.rows:
            coerced.append(
                tuple(
                    float(value)
                    if isinstance(expected[i], DoubleType) and isinstance(value, int)
                    else value
                    for i, value in enumerate(row)
                )
            )
        entry.storage.insert_many(coerced)
        self._refresh_stats(entry, appended=coerced)
        return self._attach_maintenance(Result([], [], result.metrics))

    def _run_delete(
        self, statement: ast.Delete, params: Optional[Dict[str, object]]
    ) -> Result:
        """DELETE FROM t [WHERE ...]: filters the stored partitions in
        place (deletes rewrite partition files locally; no shuffle)."""
        entry = self.catalog.table(statement.table)
        if statement.where is None:
            entry.storage.truncate()
            self._refresh_stats(entry)
            return self._attach_maintenance(Result([], []))
        converted = {
            key: _convert_value(value) for key, value in (params or {}).items()
        }
        binder = Binder(self.catalog, converted)
        predicate, columns = binder.bind_table_predicate(
            entry, statement.table, statement.where
        )
        index = {
            column.column_id: position for position, column in enumerate(columns)
        }
        from .engine.storage import RowView

        for slot in range(self.config.slots):
            rows = entry.storage.partition_rows(slot)
            entry.storage.replace_partition(
                slot,
                [row for row in rows if not predicate.evaluate(RowView(row, index))],
            )
        self._refresh_stats(entry)
        return self._attach_maintenance(Result([], []))

    def _run_union(
        self, statement: ast.UnionStatement, params: Optional[Dict[str, object]]
    ) -> Result:
        results = [self._run_select(select, params) for select in statement.selects]
        width = len(results[0].columns)
        for result in results[1:]:
            if len(result.columns) != width:
                raise CompileError(
                    "UNION branches produce different column counts: "
                    f"{width} vs {len(result.columns)}"
                )
        rows: List[tuple] = []
        for result in results:
            rows.extend(result.rows)
        if not statement.all:
            seen = {}
            for row in rows:
                seen.setdefault(row, row)
            rows = list(seen.values())
        metrics = results[0].metrics
        for result in results[1:]:
            metrics = metrics.merge(result.metrics)
        return Result(results[0].columns, rows, metrics)

    # -- service layer -------------------------------------------------------------

    def service(self, config=None, **overrides):
        """A :class:`repro.service.QueryService` in front of this
        database: sessions, plan caching, admission control and the
        fair-share slot scheduler. Keyword overrides update the
        :class:`repro.service.ServiceConfig` (e.g.
        ``db.service(max_concurrency=4)``)."""
        from .service import QueryService, ServiceConfig

        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        return QueryService(self, config)

    # -- SELECT pipeline -------------------------------------------------------------

    def _plan_select(
        self,
        statement: ast.SelectStatement,
        params: Optional[Dict[str, object]],
        catalog=None,
        param_cells=None,
        use_views=True,
    ):
        """Bind and optimize a SELECT. ``catalog`` may be a session-level
        overlay (temp views); ``param_cells`` switches parameters to
        runtime slots so the service layer can cache the plan;
        ``use_views=False`` disables view-based answering (a view's own
        refresh must recompute from the base tables)."""
        converted = {
            key: _convert_value(value) for key, value in (params or {}).items()
        }
        scope = catalog or self.catalog
        binder = Binder(scope, converted, param_cells=param_cells)
        plan = binder.bind_select(statement)
        whole = self._match_whole_statement(statement, scope) if use_views else None
        if whole is not None:
            replacement = ViewScanNode(whole, plan.columns, None)
            replacement.view_hits = 1
            replacement.view_misses = 0
            return replacement
        matcher = ViewMatcher(scope) if use_views else None
        optimizer = Optimizer(self.cost_model, view_matcher=matcher)
        optimized = optimizer.optimize(plan)
        optimized.view_hits = optimizer.view_hits
        optimized.view_misses = optimizer.view_misses
        return optimized

    @staticmethod
    def _match_whole_statement(statement: ast.SelectStatement, catalog):
        """A fresh *full-mode* materialized view whose defining query is
        structurally identical to ``statement`` (AST dataclass
        equality) — the whole result is served from stored rows. The
        incrementally maintainable class is matched at the subtree
        level by the optimizer's ViewMatcher instead."""
        list_views = getattr(catalog, "materialized_views", None)
        if list_views is None:
            return None
        for view in list_views():
            if view.incremental or not view.fresh:
                continue
            if view.query == statement:
                return view
        return None

    def _plan_physical(self, logical):
        return PhysicalPlanner(self.cost_model).plan(logical)

    def _execute_physical(self, logical, physical, param_cells=None) -> Result:
        # shared admission (reentrant when the caller already holds an
        # admission, e.g. DML running its inner SELECT): read-only
        # execution overlaps with other readers. Each statement gets a
        # fresh executor so no per-statement state is shared; the
        # template's fault injector is shared so cumulative fault
        # counters stay database-wide.
        with self._admission.shared():
            executor = self._executor.fresh()
            rows, metrics = executor.run(physical, param_cells=param_cells)
            if metrics.trace is not None:
                # annotate estimates here (not in the executor) so both
                # direct execution and service-cached plans carry them
                self.cost_model.annotate_trace(metrics.trace, physical)
                if self.config.feedback_mode == "on":
                    self._absorb_feedback(metrics.trace, physical)
        metrics.view_hits = self._count_view_scans(physical)
        metrics.view_misses = getattr(logical, "view_misses", 0)
        columns = [column.name for column in logical.columns]
        return Result(columns, rows, metrics)

    @staticmethod
    def _count_view_scans(physical) -> int:
        count = 0
        stack = [physical]
        while stack:
            node = stack.pop()
            if isinstance(node, PViewScan):
                count += 1
            stack.extend(node.children())
        return count

    def _absorb_feedback(self, trace, node) -> None:
        """Fold one statement's observed cardinalities back into the
        feedback statistics (the closed loop of docs/ENGINE.md,
        "Adaptive optimization"). Only materially wrong estimates are
        recorded — estimates within the q-error threshold teach the
        model nothing it doesn't already know — and operators the
        executor skipped (the LIMIT 0 short-circuit) report zeros that
        are not measurements, so they never become phantom actuals."""
        if trace.executed and trace.est_rows is not None:
            actual = float(trace.rows_out)
            if isinstance(node, PScan):
                # a pruned scan's output reflects the predicate's
                # segment elimination, not the table's cardinality
                if trace.segments_pruned == 0 and estimate_needs_feedback(
                    trace.est_rows, actual
                ):
                    self.feedback.record_scan_rows(node.table.name, actual)
            elif isinstance(node, PFilter):
                # blame assignment: judge the filter by its *own*
                # selectivity estimate applied to the actual input, not
                # by its row q-error — a child's misestimate (e.g. an
                # unlearnable parameterized predicate below) inflates
                # the row error without this filter being wrong
                estimated_selectivity = self._estimated_selectivity(trace)
                if trace.rows_in > 0 and estimated_selectivity is not None:
                    predicted = estimated_selectivity * float(trace.rows_in)
                    if estimate_needs_feedback(predicted, actual):
                        scope = (
                            node.child.table.name
                            if isinstance(node.child, PScan)
                            else ""
                        )
                        fingerprint = predicate_fingerprint(
                            node.predicate, scope
                        )
                        if fingerprint is not None:
                            self.feedback.record_selectivity(
                                fingerprint, actual / float(trace.rows_in)
                            )
            elif isinstance(node, (PHashJoin, PNestedLoopJoin)):
                # input cardinalities come from the child traces; their
                # product commutes, so probe/build orientation (which
                # the planner may flip run to run) cannot skew it
                inputs = 1.0
                estimated_inputs = 1.0
                for child_trace in trace.children:
                    inputs *= float(child_trace.rows_out)
                    estimated_inputs *= float(child_trace.est_rows or 0.0)
                if inputs > 0 and estimated_inputs > 0:
                    # same blame assignment as filters: compare the
                    # join's selectivity estimate on the actual inputs
                    predicted = (
                        trace.est_rows / estimated_inputs
                    ) * inputs
                    if estimate_needs_feedback(predicted, actual):
                        pairs = (
                            list(zip(node.probe_keys, node.build_keys))
                            if isinstance(node, PHashJoin)
                            else []
                        )
                        fingerprint = join_fingerprint(pairs, node.residual)
                        if fingerprint is not None:
                            self.feedback.record_join_selectivity(
                                fingerprint, actual / inputs
                            )
        for child_trace, child_node in zip(trace.children, node.children()):
            self._absorb_feedback(child_trace, child_node)

    @staticmethod
    def _estimated_selectivity(trace) -> Optional[float]:
        """The selectivity this operator's estimate implied, from the
        annotated trace: own estimated rows over the child's."""
        if not trace.children:
            return None
        child_est = trace.children[0].est_rows
        if child_est is None or child_est <= 0 or trace.est_rows is None:
            return None
        return trace.est_rows / child_est

    def _run_select(
        self,
        statement: ast.SelectStatement,
        params: Optional[Dict[str, object]],
        use_views: bool = True,
    ) -> Result:
        logical = self._plan_select(statement, params, use_views=use_views)
        physical = self._plan_physical(logical)
        return self._execute_physical(logical, physical)

    def _attach_maintenance(self, result: Result) -> Result:
        """Fold the view maintenance a mutating statement triggered into
        its metrics (view counters in EXPLAIN ANALYZE / stats)."""
        summary = self.views.take_last_maintenance()
        if summary:
            result.metrics.view_maintenance = summary.get("maintained", 0)
            result.metrics.view_delta_rows = summary.get("delta_rows", 0)
            result.metrics.view_refreshes = summary.get("refreshes", 0)
        return result
