"""The public database API.

:class:`Database` glues everything together: SQL text goes through the
parser, the binder (type checking, templated-signature binding), the
cost-based optimizer, the physical planner, and finally the simulated
cluster executor. Results come back as :class:`Result` objects carrying
both the rows and the execution metrics (simulated seconds, per-operator
breakdown).

Quickstart::

    from repro import Database
    import numpy as np

    db = Database()
    db.execute("CREATE TABLE v (vec VECTOR[])")
    db.load("v", [[np.random.randn(10)] for _ in range(100)])
    gram = db.execute("SELECT SUM(outer_product(vec, vec)) FROM v")
    print(gram.scalar())          # a 10x10 Matrix
    print(gram.metrics.total_seconds)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .admission import AdmissionGate
from .catalog import Catalog, Schema, TableEntry, append_stats, collect_stats
from .config import ClusterConfig
from .engine import Cluster, Executor, PartitionedTable, QueryMetrics
from .errors import CompileError, ExecutionError
from .plan import Binder, CostModel, Optimizer, PhysicalPlanner
from .sql import ast, parse_script, parse_statement
from .storage import DiskPartitionedTable, StorageEngine
from .types import Matrix, Vector


class Result:
    """Rows plus metadata from executing one statement."""

    def __init__(
        self,
        columns: List[str],
        rows: List[tuple],
        metrics: Optional[QueryMetrics] = None,
    ):
        self.columns = columns
        self.rows = rows
        self.metrics = metrics or QueryMetrics()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} row(s) x "
                f"{len(self.columns)} column(s)"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List:
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"no result column named {name!r}") from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def profile(self) -> str:
        """Per-operator execution profile of this statement (simulated
        wall time, rows, network bytes, skew)."""
        return self.metrics.report()

    def __repr__(self) -> str:
        return f"Result({self.columns}, {len(self.rows)} row(s))"


def _convert_value(value):
    """Accept convenient Python/numpy values when loading data."""
    if isinstance(value, np.ndarray):
        if value.ndim == 1:
            return Vector(value)
        if value.ndim == 2:
            return Matrix(value)
        raise ExecutionError(f"cannot store a {value.ndim}-d array")
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list,)):
        array = np.asarray(value, dtype=np.float64)
        return _convert_value(array)
    return value


class Database:
    """An in-process, simulated-distributed database with the paper's
    linear algebra extensions."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        size_blind_optimizer: bool = False,
        execution_mode: Optional[str] = None,
    ):
        self.cluster = Cluster(config)
        self.config = self.cluster.config
        self.catalog = Catalog()
        self.cost_model = CostModel(self.config, size_blind=size_blind_optimizer)
        #: segment files, buffer pool, and spill bookkeeping — shared by
        #: every table and executor of this database
        self.storage = StorageEngine(self.config)
        #: executor template: holds mode/storage/fault-injector; every
        #: statement executes on a ``fresh()`` copy so concurrently
        #: admitted statements never share per-statement state (lineage
        #: memos, checkpoints, trace bookkeeping)
        self._executor = Executor(self.cluster, execution_mode, storage=self.storage)
        #: reader–writer statement admission: read-only statements run
        #: concurrently against a stable catalog, DDL/DML and config
        #: swaps take the exclusive path (see repro/admission.py). This
        #: replaces the old global ``_exec_lock`` that serialized every
        #: statement.
        self._admission = AdmissionGate()

    @property
    def execution_mode(self) -> str:
        """Which interpreter back end this database runs ("row" or
        "batch"); both produce identical rows and simulated metrics."""
        return self._executor.execution_mode

    def set_execution_mode(self, mode: str) -> None:
        """Switch interpreter back ends between statements. Takes the
        exclusive admission path: the executor template swap waits for
        in-flight statements to drain and is never observed mid-run."""
        with self._admission.exclusive():
            self._executor = Executor(
                self.cluster,
                mode,
                storage=self.storage,
                injector=self._executor.injector,
            )

    # -- persistence --------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize schemas, data, and views to a single file; restore
        with :meth:`Database.restore`."""
        from .persist import save_database

        save_database(self, path)

    @classmethod
    def restore(cls, path: str, config: Optional[ClusterConfig] = None) -> "Database":
        """Recreate a saved database (optionally onto a different
        cluster shape; data is re-partitioned)."""
        from .persist import restore_database

        return restore_database(path, config)

    # -- schema and loading ----------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence,
        partition_by: Optional[Sequence[str]] = None,
    ) -> TableEntry:
        """Create a table from ``(name, type)`` pairs (types may be
        strings like ``"MATRIX[10][]"``); optionally hash-partitioned on
        some columns at load time."""
        with self._admission.exclusive():
            return self._create_table_locked(name, columns, partition_by)

    def _create_table_locked(
        self,
        name: str,
        columns: Sequence,
        partition_by: Optional[Sequence[str]] = None,
    ) -> TableEntry:
        schema = Schema(columns)
        entry = self.catalog.create_table(name, schema)
        if self.storage.mode == "disk":
            entry.storage = DiskPartitionedTable(
                schema,
                self.config.slots,
                partition_by=partition_by,
                engine=self.storage,
                name=name,
                segment_rows=self.config.segment_rows,
            )
        else:
            entry.storage = PartitionedTable(
                schema,
                self.config.slots,
                partition_by=partition_by,
                segment_rows=self.config.segment_rows,
            )
        return entry

    def load(self, name: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load rows (each a sequence of values; numpy arrays become
        vectors/matrices) and refresh the table's statistics."""
        with self._admission.exclusive():
            entry = self.catalog.table(name)
            converted = [
                tuple(_convert_value(value) for value in row) for row in rows
            ]
            count = entry.storage.insert_many(converted)
            self._refresh_stats(entry, appended=converted)
            return count

    def _refresh_stats(
        self, entry: TableEntry, appended: Optional[List[tuple]] = None
    ) -> None:
        """Refresh ``entry``'s statistics after a DML statement. When the
        statement only appended rows, pass them via ``appended`` and the
        accumulator sets kept by ``collect_stats`` are updated in place
        instead of rescanning the whole table; deletes always rescan."""
        if appended is None or not append_stats(
            entry.stats, entry.schema, appended
        ):
            entry.stats = collect_stats(entry.schema, entry.storage.all_rows())
        # statistics feed refined types and size estimates into plans, so
        # every refresh invalidates cached plans via the catalog version
        self.catalog.bump_version()

    # -- SQL ----------------------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Dict[str, object]] = None
    ) -> Result:
        """Parse, plan and execute a single SQL statement."""
        statement = parse_statement(sql)
        return self._execute_statement(statement, params)

    def execute_script(
        self, sql: str, params: Optional[Dict[str, object]] = None
    ) -> List[Result]:
        """Execute a semicolon-separated script; returns one Result per
        statement."""
        return [
            self._execute_statement(statement, params)
            for statement in parse_script(sql)
        ]

    def explain(
        self,
        sql: str,
        params: Optional[Dict[str, object]] = None,
        verbose: bool = False,
    ) -> str:
        """The optimized logical and physical plans for a SELECT; with
        ``verbose=True`` every logical node is annotated with its
        estimated cardinality and row width — the size information the
        LA-aware optimizer plans with (section 4)."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("EXPLAIN supports SELECT statements only")
        with self._admission.shared():
            logical = self._plan_select(statement, params)
            physical = PhysicalPlanner(self.cost_model).plan(logical)
        cost_model = self.cost_model if verbose else None
        text = (
            "== logical ==\n"
            + logical.pretty(cost_model=cost_model)
            + "\n== physical ==\n"
            + physical.pretty()
        )
        if verbose:
            text += f"\n== estimated cost ==\n{self.cost_model.plan_cost(logical):.2f}s"
        return text

    def explain_analyze(
        self, sql: str, params: Optional[Dict[str, object]] = None
    ) -> str:
        """Execute a SELECT and render its physical plan with the cost
        model's estimated rows/bytes/seconds next to the measured
        actuals, plus a per-operator cardinality q-error column — the
        feedback loop that shows whether the LA-aware estimates the
        optimizer planned with (section 4) were right."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise CompileError("EXPLAIN ANALYZE supports SELECT statements only")
        with self._admission.shared():
            logical = self._plan_select(statement, params)
            physical = self._plan_physical(logical)
            result = self._execute_physical(logical, physical)
        trace = result.metrics.trace
        assert trace is not None
        lines = [trace.render()]
        lines.append(
            f"delivered {len(result.rows)} row(s) in "
            f"{result.metrics.total_seconds:.3f} simulated s "
            f"({result.metrics.jobs} job(s))"
        )
        worst = trace.max_q_error()
        if worst is not None:
            lines.append(f"worst cardinality q-error {worst:.2f}")
        return "\n".join(lines)

    # -- statement dispatch ------------------------------------------------------

    def _execute_statement(
        self, statement: ast.Statement, params: Optional[Dict[str, object]]
    ) -> Result:
        # read-only statements overlap under shared admission; anything
        # that can mutate the catalog or table storage takes the
        # exclusive path (and bumps the catalog version, invalidating
        # cached plans)
        if isinstance(statement, (ast.SelectStatement, ast.UnionStatement)):
            with self._admission.shared():
                return self._dispatch_statement(statement, params)
        with self._admission.exclusive():
            return self._dispatch_statement(statement, params)

    def _dispatch_statement(
        self, statement: ast.Statement, params: Optional[Dict[str, object]]
    ) -> Result:
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(statement, params)
        if isinstance(statement, ast.CreateTable):
            self.create_table(statement.name, statement.columns)
            return Result([], [])
        if isinstance(statement, ast.CreateTableAs):
            result = self._run_select(statement.query, params)
            logical = self._plan_select(statement.query, params)
            columns = [
                (column.name, column.data_type) for column in logical.columns
            ]
            self.create_table(statement.name, columns)
            entry = self.catalog.table(statement.name)
            entry.storage.insert_many(result.rows)
            self._refresh_stats(entry, appended=result.rows)
            return result
        if isinstance(statement, ast.CreateView):
            if statement.temporary:
                raise CompileError(
                    "CREATE TEMPORARY VIEW is session-scoped; acquire a "
                    "session from Database.service() and run it there"
                )
            # bind once against the current catalog so errors surface now;
            # parameters may stay unbound until the view is queried
            binder = Binder(self.catalog, params, defer_params=True)
            plan = binder.bind_select(statement.query)
            if statement.column_names is not None and len(
                statement.column_names
            ) != len(plan.columns):
                raise CompileError(
                    f"view {statement.name!r}: {len(statement.column_names)} "
                    f"column name(s) for {len(plan.columns)} column(s)"
                )
            self.catalog.create_view(
                statement.name, statement.query, statement.column_names
            )
            return Result([], [])
        if isinstance(statement, ast.InsertValues):
            entry = self.catalog.table(statement.table)
            binder = Binder(self.catalog, params)
            rows = binder.bind_insert_rows(entry.schema.types, statement.rows)
            inserted = [tuple(row) for row in rows]
            entry.storage.insert_many(inserted)
            self._refresh_stats(entry, appended=inserted)
            return Result([], [])
        if isinstance(statement, ast.InsertSelect):
            return self._run_insert_select(statement, params)
        if isinstance(statement, ast.Delete):
            return self._run_delete(statement, params)
        if isinstance(statement, ast.UnionStatement):
            return self._run_union(statement, params)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, if_exists=statement.if_exists)
            return Result([], [])
        if isinstance(statement, ast.DropView):
            self.catalog.drop_view(statement.name, if_exists=statement.if_exists)
            return Result([], [])
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    # -- writes beyond INSERT ... VALUES -----------------------------------------

    def _run_insert_select(
        self, statement: ast.InsertSelect, params: Optional[Dict[str, object]]
    ) -> Result:
        entry = self.catalog.table(statement.table)
        result = self._run_select(statement.query, params)
        expected = entry.schema.types
        if result.rows and len(result.rows[0]) != len(expected):
            raise CompileError(
                f"INSERT INTO {statement.table}: query produces "
                f"{len(result.rows[0])} column(s), table has {len(expected)}"
            )
        from .types import DoubleType

        coerced = []
        for row in result.rows:
            coerced.append(
                tuple(
                    float(value)
                    if isinstance(expected[i], DoubleType) and isinstance(value, int)
                    else value
                    for i, value in enumerate(row)
                )
            )
        entry.storage.insert_many(coerced)
        self._refresh_stats(entry, appended=coerced)
        return Result([], [], result.metrics)

    def _run_delete(
        self, statement: ast.Delete, params: Optional[Dict[str, object]]
    ) -> Result:
        """DELETE FROM t [WHERE ...]: filters the stored partitions in
        place (deletes rewrite partition files locally; no shuffle)."""
        entry = self.catalog.table(statement.table)
        if statement.where is None:
            entry.storage.truncate()
            self._refresh_stats(entry)
            return Result([], [])
        converted = {
            key: _convert_value(value) for key, value in (params or {}).items()
        }
        binder = Binder(self.catalog, converted)
        predicate, columns = binder.bind_table_predicate(
            entry, statement.table, statement.where
        )
        index = {
            column.column_id: position for position, column in enumerate(columns)
        }
        from .engine.storage import RowView

        for slot in range(self.config.slots):
            rows = entry.storage.partition_rows(slot)
            entry.storage.replace_partition(
                slot,
                [row for row in rows if not predicate.evaluate(RowView(row, index))],
            )
        self._refresh_stats(entry)
        return Result([], [])

    def _run_union(
        self, statement: ast.UnionStatement, params: Optional[Dict[str, object]]
    ) -> Result:
        results = [self._run_select(select, params) for select in statement.selects]
        width = len(results[0].columns)
        for result in results[1:]:
            if len(result.columns) != width:
                raise CompileError(
                    "UNION branches produce different column counts: "
                    f"{width} vs {len(result.columns)}"
                )
        rows: List[tuple] = []
        for result in results:
            rows.extend(result.rows)
        if not statement.all:
            seen = {}
            for row in rows:
                seen.setdefault(row, row)
            rows = list(seen.values())
        metrics = results[0].metrics
        for result in results[1:]:
            metrics = metrics.merge(result.metrics)
        return Result(results[0].columns, rows, metrics)

    # -- service layer -------------------------------------------------------------

    def service(self, config=None, **overrides):
        """A :class:`repro.service.QueryService` in front of this
        database: sessions, plan caching, admission control and the
        fair-share slot scheduler. Keyword overrides update the
        :class:`repro.service.ServiceConfig` (e.g.
        ``db.service(max_concurrency=4)``)."""
        from .service import QueryService, ServiceConfig

        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        return QueryService(self, config)

    # -- SELECT pipeline -------------------------------------------------------------

    def _plan_select(
        self,
        statement: ast.SelectStatement,
        params: Optional[Dict[str, object]],
        catalog=None,
        param_cells=None,
    ):
        """Bind and optimize a SELECT. ``catalog`` may be a session-level
        overlay (temp views); ``param_cells`` switches parameters to
        runtime slots so the service layer can cache the plan."""
        converted = {
            key: _convert_value(value) for key, value in (params or {}).items()
        }
        binder = Binder(
            catalog or self.catalog, converted, param_cells=param_cells
        )
        plan = binder.bind_select(statement)
        optimizer = Optimizer(self.cost_model)
        return optimizer.optimize(plan)

    def _plan_physical(self, logical):
        return PhysicalPlanner(self.cost_model).plan(logical)

    def _execute_physical(self, logical, physical, param_cells=None) -> Result:
        # shared admission (reentrant when the caller already holds an
        # admission, e.g. DML running its inner SELECT): read-only
        # execution overlaps with other readers. Each statement gets a
        # fresh executor so no per-statement state is shared; the
        # template's fault injector is shared so cumulative fault
        # counters stay database-wide.
        with self._admission.shared():
            executor = self._executor.fresh()
            rows, metrics = executor.run(physical, param_cells=param_cells)
            if metrics.trace is not None:
                # annotate estimates here (not in the executor) so both
                # direct execution and service-cached plans carry them
                self.cost_model.annotate_trace(metrics.trace, physical)
        columns = [column.name for column in logical.columns]
        return Result(columns, rows, metrics)

    def _run_select(
        self, statement: ast.SelectStatement, params: Optional[Dict[str, object]]
    ) -> Result:
        logical = self._plan_select(statement, params)
        physical = self._plan_physical(logical)
        return self._execute_physical(logical, physical)
