"""Saving and restoring a database to/from a single file.

The payload is a versioned pickle of plain data: schemas as
``(name, type-string)`` pairs, table rows (vectors/matrices as numpy
arrays), partitioning metadata, statistics-relevant row data, and view
definitions as their original ASTs. It is an *internal* format — the
paper's system keeps its data on HDFS; this is the laptop equivalent so
a loaded workload can be reused across sessions.

On disk, newly written snapshots are *framed*::

    RDBF1\\n | <u32 CRC32(payload) LE> | pickled payload

and are written atomically (same-directory temp file + fsync +
``os.replace`` + directory fsync, via
:func:`repro.storage.durable.atomic_write`), so a crash mid-save never
leaves a torn file under the final name, and bit-rot is detected by the
checksum instead of surfacing as an arbitrary unpickling failure.
Legacy files (a bare pickle, as written before the framing existed)
remain readable. Any validation failure raises a structured
:class:`~repro.errors.SnapshotCorruptError` naming the file and the
byte offset where validation stopped.

``restore_database`` also accepts a *directory*: the durability home of
a ``durability_mode="wal"`` database, recovered by replaying the
write-ahead log on top of the latest checkpoint (see
:mod:`repro.storage.wal` and docs/DURABILITY.md).
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from typing import Optional

from .catalog import TableStats
from .config import ClusterConfig
from .errors import ReproError, SnapshotCorruptError
from .types import LabeledScalar, Matrix, Vector

#: v1 stored schemas + a flat row list only; v2 adds per-table
#: statistics and the catalog version (restore skips the full
#: statistics rescan) and keeps rows *per partition*, so restoring onto
#: the same cluster shape reproduces the exact slot layout — and
#: therefore bit-identical per-slot summation order. v3 adds
#: materialized views: the definition plus a full view's stored result
#: rows and staleness flag (an incremental view's accumulator state is
#: re-folded from the restored partitions, which reproduces it
#: bit-for-bit — the partitions land verbatim). v1/v2 files remain
#: readable.
FORMAT_VERSION = 3
MAGIC = "repro-database"
#: header of framed (checksummed) snapshot files; files without it are
#: read as legacy bare pickles
FRAME_MAGIC = b"RDBF1\n"
_FRAME_CRC = struct.Struct("<I")


def _freeze_value(value):
    """Convert engine values to plain picklable data."""
    if isinstance(value, Vector):
        return ("vec", value.data, value.label)
    if isinstance(value, Matrix):
        return ("mat", value.data)
    if isinstance(value, LabeledScalar):
        return ("ls", value.value, value.label)
    return ("raw", value)


def _thaw_value(frozen):
    kind = frozen[0]
    if kind == "vec":
        return Vector(frozen[1], label=frozen[2])
    if kind == "mat":
        return Matrix(frozen[1])
    if kind == "ls":
        return LabeledScalar(frozen[1], frozen[2])
    return frozen[1]


def _freeze_stats(stats: TableStats) -> dict:
    """Table statistics as plain picklable data (format v2)."""
    columns = {}
    for name, col in stats.columns.items():
        columns[name] = {
            "distinct": col.distinct,
            "observed_length": col.observed_length,
            "observed_rows": col.observed_rows,
            "observed_cols": col.observed_cols,
            "value_set": (
                None
                if col.value_set is None
                else [_freeze_value(value) for value in col.value_set]
            ),
            "length_set": (
                None if col.length_set is None else sorted(col.length_set)
            ),
            "shape_set": (
                None if col.shape_set is None else sorted(col.shape_set)
            ),
        }
    return {
        "row_count": stats.row_count,
        "incremental": stats.incremental,
        "columns": columns,
    }


def _thaw_stats(frozen: dict) -> TableStats:
    stats = TableStats(
        row_count=frozen["row_count"], incremental=frozen["incremental"]
    )
    for name, col in frozen["columns"].items():
        col_stats = stats.column(name)
        col_stats.distinct = col["distinct"]
        col_stats.observed_length = col["observed_length"]
        col_stats.observed_rows = col["observed_rows"]
        col_stats.observed_cols = col["observed_cols"]
        col_stats.value_set = (
            None
            if col["value_set"] is None
            else {_thaw_value(value) for value in col["value_set"]}
        )
        col_stats.length_set = (
            None if col["length_set"] is None else set(col["length_set"])
        )
        col_stats.shape_set = (
            None
            if col["shape_set"] is None
            else {tuple(shape) for shape in col["shape_set"]}
        )
    return stats


def write_snapshot(path: str, payload: dict, injector=None) -> None:
    """Frame (CRC32) and atomically write one snapshot payload."""
    from .storage.durable import atomic_write

    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    blob = FRAME_MAGIC + _FRAME_CRC.pack(zlib.crc32(body)) + body
    atomic_write(path, blob, injector=injector)


def load_snapshot(path: str, injector=None) -> dict:
    """Read and validate one snapshot file (framed or legacy); raises
    :class:`SnapshotCorruptError` on any validation failure and
    :class:`ReproError` on a well-formed file of the wrong kind."""
    from .storage.durable import durable_read

    blob = durable_read(path, injector=injector)
    header = len(FRAME_MAGIC) + _FRAME_CRC.size
    if blob.startswith(FRAME_MAGIC):
        if len(blob) < header:
            raise SnapshotCorruptError(
                "snapshot truncated inside the frame header",
                path=path,
                offset=len(blob),
            )
        (crc,) = _FRAME_CRC.unpack_from(blob, len(FRAME_MAGIC))
        body = blob[header:]
        if zlib.crc32(body) != crc:
            raise SnapshotCorruptError(
                "snapshot checksum mismatch (bit rot or torn write)",
                path=path,
                offset=header,
            )
        offset_base = header
    else:
        body = blob
        offset_base = 0
    stream = io.BytesIO(body)
    try:
        payload = pickle.load(stream)
    except Exception as exc:
        raise SnapshotCorruptError(
            f"snapshot does not decode ({type(exc).__name__}: {exc})",
            path=path,
            offset=offset_base + stream.tell(),
        ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise ReproError(f"{path!r} is not a repro database file")
    if payload.get("version") not in (1, 2, FORMAT_VERSION):
        raise ReproError(
            f"unsupported database file version {payload.get('version')!r}"
        )
    return payload


def save_database(db, path: str, injector=None) -> None:
    """Serialize a :class:`repro.Database` (schemas, data, statistics,
    views) to ``path`` — atomically: a crash mid-save leaves the
    previous file (or no file), never a torn one."""
    tables = []
    for entry in db.catalog.tables():
        storage = entry.storage
        tables.append(
            {
                "name": entry.name,
                "columns": [
                    (column.name, repr(column.data_type))
                    for column in entry.schema
                ],
                "partition_by": storage.partition_by,
                "partitions": [
                    [
                        tuple(_freeze_value(value) for value in row)
                        for row in storage.partition_rows(slot)
                    ]
                    for slot in range(storage.slots)
                ],
                "insert_cursor": getattr(storage, "_next", 0),
                "stats": _freeze_stats(entry.stats),
            }
        )
    views = [
        {
            "name": view.name,
            "query": view.query,  # plain-dataclass AST, picklable
            "column_names": view.column_names,
        }
        for view in db.catalog._views.values()
    ]
    matviews = [
        {
            "name": view.name,
            "query": view.query,
            "column_names": view.column_names,
            "mode": view.mode,
            # a full view's stored result rows travel verbatim (a stale
            # deferred view must come back with its *old* rows, not a
            # recompute); incremental state is re-folded from the
            # restored partitions instead, which is bit-identical
            "rows": (
                None
                if view.incremental
                else [
                    tuple(_freeze_value(value) for value in row)
                    for row in view.rows
                ]
            ),
            "stale": view.stale,
        }
        for view in db.catalog.materialized_views()
    ]
    payload = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "config": db.config,
        "catalog_version": db.catalog.version,
        "tables": tables,
        "views": views,
        "matviews": matviews,
    }
    write_snapshot(path, payload, injector=injector)


def restore_database(path: str, config: Optional[ClusterConfig] = None):
    """Recreate a :class:`repro.Database` saved with
    :func:`save_database`; ``config`` overrides the saved cluster shape
    (data is re-partitioned for the new slot count).

    When ``path`` is a *directory*, it is treated as the durability home
    of a ``durability_mode="wal"`` database and recovered by replaying
    the write-ahead log on top of the latest checkpoint; the recovered
    database keeps logging to that directory. Restoring a bare snapshot
    *file* always yields a non-durable database (its WAL, if any, lives
    with the directory, not the file)."""
    from .db import Database

    if os.path.isdir(path):
        from .storage.wal import recover_database

        return recover_database(path, config)
    payload = load_snapshot(path)
    effective = _effective_config(payload["config"], config)
    if effective.durability_mode != "off":
        effective = effective.with_updates(durability_mode="off", data_dir=None)
    db = Database(effective)
    apply_snapshot(db, payload)
    return db


def apply_snapshot(db, payload: dict) -> None:
    """Materialize a snapshot payload into an empty database: tables,
    rows, statistics, views, catalog version."""
    for table in payload["tables"]:
        db.create_table(
            table["name"], table["columns"], partition_by=table["partition_by"]
        )
        entry = db.catalog.table(table["name"])
        _restore_rows(entry.storage, table)
        frozen_stats = table.get("stats")
        if frozen_stats is not None:
            entry.stats = _thaw_stats(frozen_stats)
        else:  # v1 files carry no statistics: rescan, as before
            db._refresh_stats(entry)
    for view in payload["views"]:
        db.catalog.create_view(view["name"], view["query"], view["column_names"])
    for frozen in payload.get("matviews", ()):
        rows = frozen.get("rows")
        db.views.restore(
            frozen["name"],
            frozen["query"],
            frozen["column_names"],
            rows=(
                None
                if rows is None
                else [
                    tuple(_thaw_value(value) for value in row) for row in rows
                ]
            ),
            stale=frozen.get("stale", False),
        )
    saved_catalog_version = payload.get("catalog_version")
    if saved_catalog_version is not None:
        # the saved version is authoritative for snapshot state: the
        # database is freshly built (no plan caches to invalidate), and
        # pinning it exactly is what lets WAL replay reproduce the
        # original catalog version bit-for-bit
        db.catalog.version = saved_catalog_version


def _restore_rows(storage, table: dict) -> None:
    """Reload one table's rows.

    v2 payloads carry rows per partition: restoring onto a cluster with
    the same slot count places every partition back verbatim (identical
    slot layout, identical within-slot order — per-slot partial sums
    come out bit-identical). A different slot count, or a v1 payload's
    flat row list, falls back to re-dealing through ``insert_many``
    (the documented re-partitioning behaviour).
    """
    partitions = table.get("partitions")
    if partitions is not None and len(partitions) == storage.slots:
        for slot, frozen_rows in enumerate(partitions):
            storage.replace_partition(
                slot,
                [tuple(_thaw_value(value) for value in row) for row in frozen_rows],
            )
        storage._next = table.get("insert_cursor", 0)
        return
    if partitions is not None:
        frozen_rows = [row for part in partitions for row in part]
    else:  # v1: flat row list
        frozen_rows = table["rows"]
    storage.insert_many(
        tuple(_thaw_value(value) for value in row) for row in frozen_rows
    )


def _effective_config(
    saved: ClusterConfig, override: Optional[ClusterConfig]
) -> ClusterConfig:
    """Merge an override config with the saved one.

    The override wins for everything it explicitly sets, but fields the
    caller left at their defaults must not silently discard what the
    saved database carried: the fault plan and the execution mode.
    """
    if override is None:
        return saved
    updates = {}
    if override.fault_plan is None and saved.fault_plan is not None:
        updates["fault_plan"] = saved.fault_plan
    default_mode = ClusterConfig.__dataclass_fields__["execution_mode"].default
    if (
        override.execution_mode == default_mode
        and saved.execution_mode != default_mode
    ):
        updates["execution_mode"] = saved.execution_mode
    if updates:
        return override.with_updates(**updates)
    return override
