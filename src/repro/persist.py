"""Saving and restoring a database to/from a single file.

The on-disk format is a versioned pickle of plain data: schemas as
``(name, type-string)`` pairs, table rows (vectors/matrices as numpy
arrays), partitioning metadata, statistics-relevant row data, and view
definitions as their original ASTs. It is an *internal* format — the
paper's system keeps its data on HDFS; this is the laptop equivalent so
a loaded workload can be reused across sessions.
"""

from __future__ import annotations

import pickle
from typing import Optional

from .catalog import TableStats
from .config import ClusterConfig
from .errors import ReproError
from .types import LabeledScalar, Matrix, Vector

#: v1 stored schemas + a flat row list only; v2 adds per-table
#: statistics and the catalog version (restore skips the full
#: statistics rescan) and keeps rows *per partition*, so restoring onto
#: the same cluster shape reproduces the exact slot layout — and
#: therefore bit-identical per-slot summation order. v1 files remain
#: readable (they rescan and re-deal, as before).
FORMAT_VERSION = 2
MAGIC = "repro-database"


def _freeze_value(value):
    """Convert engine values to plain picklable data."""
    if isinstance(value, Vector):
        return ("vec", value.data, value.label)
    if isinstance(value, Matrix):
        return ("mat", value.data)
    if isinstance(value, LabeledScalar):
        return ("ls", value.value, value.label)
    return ("raw", value)


def _thaw_value(frozen):
    kind = frozen[0]
    if kind == "vec":
        return Vector(frozen[1], label=frozen[2])
    if kind == "mat":
        return Matrix(frozen[1])
    if kind == "ls":
        return LabeledScalar(frozen[1], frozen[2])
    return frozen[1]


def _freeze_stats(stats: TableStats) -> dict:
    """Table statistics as plain picklable data (format v2)."""
    columns = {}
    for name, col in stats.columns.items():
        columns[name] = {
            "distinct": col.distinct,
            "observed_length": col.observed_length,
            "observed_rows": col.observed_rows,
            "observed_cols": col.observed_cols,
            "value_set": (
                None
                if col.value_set is None
                else [_freeze_value(value) for value in col.value_set]
            ),
            "length_set": (
                None if col.length_set is None else sorted(col.length_set)
            ),
            "shape_set": (
                None if col.shape_set is None else sorted(col.shape_set)
            ),
        }
    return {
        "row_count": stats.row_count,
        "incremental": stats.incremental,
        "columns": columns,
    }


def _thaw_stats(frozen: dict) -> TableStats:
    stats = TableStats(
        row_count=frozen["row_count"], incremental=frozen["incremental"]
    )
    for name, col in frozen["columns"].items():
        col_stats = stats.column(name)
        col_stats.distinct = col["distinct"]
        col_stats.observed_length = col["observed_length"]
        col_stats.observed_rows = col["observed_rows"]
        col_stats.observed_cols = col["observed_cols"]
        col_stats.value_set = (
            None
            if col["value_set"] is None
            else {_thaw_value(value) for value in col["value_set"]}
        )
        col_stats.length_set = (
            None if col["length_set"] is None else set(col["length_set"])
        )
        col_stats.shape_set = (
            None
            if col["shape_set"] is None
            else {tuple(shape) for shape in col["shape_set"]}
        )
    return stats


def save_database(db, path: str) -> None:
    """Serialize a :class:`repro.Database` (schemas, data, statistics,
    views) to ``path``."""
    tables = []
    for entry in db.catalog.tables():
        storage = entry.storage
        tables.append(
            {
                "name": entry.name,
                "columns": [
                    (column.name, repr(column.data_type))
                    for column in entry.schema
                ],
                "partition_by": storage.partition_by,
                "partitions": [
                    [
                        tuple(_freeze_value(value) for value in row)
                        for row in storage.partition_rows(slot)
                    ]
                    for slot in range(storage.slots)
                ],
                "insert_cursor": getattr(storage, "_next", 0),
                "stats": _freeze_stats(entry.stats),
            }
        )
    views = [
        {
            "name": view.name,
            "query": view.query,  # plain-dataclass AST, picklable
            "column_names": view.column_names,
        }
        for view in db.catalog._views.values()
    ]
    payload = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "config": db.config,
        "catalog_version": db.catalog.version,
        "tables": tables,
        "views": views,
    }
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def restore_database(path: str, config: Optional[ClusterConfig] = None):
    """Recreate a :class:`repro.Database` saved with
    :func:`save_database`; ``config`` overrides the saved cluster shape
    (data is re-partitioned for the new slot count)."""
    from .db import Database

    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise ReproError(f"{path!r} is not a repro database file")
    if payload.get("version") not in (1, FORMAT_VERSION):
        raise ReproError(
            f"unsupported database file version {payload.get('version')!r}"
        )
    db = Database(_effective_config(payload["config"], config))
    for table in payload["tables"]:
        db.create_table(
            table["name"], table["columns"], partition_by=table["partition_by"]
        )
        entry = db.catalog.table(table["name"])
        _restore_rows(entry.storage, table)
        frozen_stats = table.get("stats")
        if frozen_stats is not None:
            entry.stats = _thaw_stats(frozen_stats)
            db.catalog.bump_version()
        else:  # v1 files carry no statistics: rescan, as before
            db._refresh_stats(entry)
    for view in payload["views"]:
        db.catalog.create_view(view["name"], view["query"], view["column_names"])
    saved_catalog_version = payload.get("catalog_version")
    if saved_catalog_version is not None:
        db.catalog.version = max(db.catalog.version, saved_catalog_version)
    return db


def _restore_rows(storage, table: dict) -> None:
    """Reload one table's rows.

    v2 payloads carry rows per partition: restoring onto a cluster with
    the same slot count places every partition back verbatim (identical
    slot layout, identical within-slot order — per-slot partial sums
    come out bit-identical). A different slot count, or a v1 payload's
    flat row list, falls back to re-dealing through ``insert_many``
    (the documented re-partitioning behaviour).
    """
    partitions = table.get("partitions")
    if partitions is not None and len(partitions) == storage.slots:
        for slot, frozen_rows in enumerate(partitions):
            storage.replace_partition(
                slot,
                [tuple(_thaw_value(value) for value in row) for row in frozen_rows],
            )
        storage._next = table.get("insert_cursor", 0)
        return
    if partitions is not None:
        frozen_rows = [row for part in partitions for row in part]
    else:  # v1: flat row list
        frozen_rows = table["rows"]
    storage.insert_many(
        tuple(_thaw_value(value) for value in row) for row in frozen_rows
    )


def _effective_config(
    saved: ClusterConfig, override: Optional[ClusterConfig]
) -> ClusterConfig:
    """Merge an override config with the saved one.

    The override wins for everything it explicitly sets, but fields the
    caller left at their defaults must not silently discard what the
    saved database carried: the fault plan and the execution mode.
    """
    if override is None:
        return saved
    updates = {}
    if override.fault_plan is None and saved.fault_plan is not None:
        updates["fault_plan"] = saved.fault_plan
    default_mode = ClusterConfig.__dataclass_fields__["execution_mode"].default
    if (
        override.execution_mode == default_mode
        and saved.execution_mode != default_mode
    ):
        updates["execution_mode"] = saved.execution_mode
    if updates:
        return override.with_updates(**updates)
    return override
