"""Saving and restoring a database to/from a single file.

The on-disk format is a versioned pickle of plain data: schemas as
``(name, type-string)`` pairs, table rows (vectors/matrices as numpy
arrays), partitioning metadata, statistics-relevant row data, and view
definitions as their original ASTs. It is an *internal* format — the
paper's system keeps its data on HDFS; this is the laptop equivalent so
a loaded workload can be reused across sessions.
"""

from __future__ import annotations

import pickle
from typing import Optional

from .config import ClusterConfig
from .errors import ReproError
from .types import LabeledScalar, Matrix, Vector

FORMAT_VERSION = 1
MAGIC = "repro-database"


def _freeze_value(value):
    """Convert engine values to plain picklable data."""
    if isinstance(value, Vector):
        return ("vec", value.data, value.label)
    if isinstance(value, Matrix):
        return ("mat", value.data)
    if isinstance(value, LabeledScalar):
        return ("ls", value.value, value.label)
    return ("raw", value)


def _thaw_value(frozen):
    kind = frozen[0]
    if kind == "vec":
        return Vector(frozen[1], label=frozen[2])
    if kind == "mat":
        return Matrix(frozen[1])
    if kind == "ls":
        return LabeledScalar(frozen[1], frozen[2])
    return frozen[1]


def save_database(db, path: str) -> None:
    """Serialize a :class:`repro.Database` (schemas, data, views) to
    ``path``."""
    tables = []
    for entry in db.catalog.tables():
        tables.append(
            {
                "name": entry.name,
                "columns": [
                    (column.name, repr(column.data_type))
                    for column in entry.schema
                ],
                "partition_by": entry.storage.partition_by,
                "rows": [
                    tuple(_freeze_value(value) for value in row)
                    for row in entry.storage.all_rows()
                ],
            }
        )
    views = [
        {
            "name": view.name,
            "query": view.query,  # plain-dataclass AST, picklable
            "column_names": view.column_names,
        }
        for view in db.catalog._views.values()
    ]
    payload = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "config": db.config,
        "tables": tables,
        "views": views,
    }
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def restore_database(path: str, config: Optional[ClusterConfig] = None):
    """Recreate a :class:`repro.Database` saved with
    :func:`save_database`; ``config`` overrides the saved cluster shape
    (data is re-partitioned for the new slot count)."""
    from .db import Database

    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise ReproError(f"{path!r} is not a repro database file")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported database file version {payload.get('version')!r}"
        )
    db = Database(config or payload["config"])
    for table in payload["tables"]:
        db.create_table(
            table["name"], table["columns"], partition_by=table["partition_by"]
        )
        rows = [
            tuple(_thaw_value(value) for value in row) for row in table["rows"]
        ]
        entry = db.catalog.table(table["name"])
        entry.storage.insert_many(rows)
        db._refresh_stats(entry)
    for view in payload["views"]:
        db.catalog.create_view(view["name"], view["query"], view["column_names"])
    return db
