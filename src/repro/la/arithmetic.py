"""Typing and costing rules for overloaded arithmetic (paper section 3.2).

``+ - * /`` are overloaded over MATRIX and VECTOR types: tensor-tensor is
element-wise (``*`` is the Hadamard product), scalar-tensor applies the
operation to every entry. Mixing a VECTOR with a MATRIX is a compile
error. The runtime behaviour itself lives on the value classes in
:mod:`repro.types.tensor`; this module provides the *static* rules used by
the binder and the optimizer.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from ..errors import TypeCheckError
from ..types import (
    BOOLEAN,
    DOUBLE,
    DataType,
    MatrixType,
    StringType,
    VectorType,
    common_numeric_type,
)
from ..types.scalar import DEFAULT_UNKNOWN_DIM

ARITHMETIC_OPS = {"+", "-", "*", "/"}
COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}

def _div(left, right):
    """SQL-style division: integer/integer truncates toward zero, exactly
    what the paper's blocking query ``x.id/1000 = ind.mi`` relies on."""
    if isinstance(left, int) and isinstance(right, int):
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right


_PY_ARITHMETIC: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _div,
}

_PY_COMPARISON: dict[str, Callable] = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}


def python_operator(op: str) -> Callable:
    """The runtime callable implementing a SQL binary operator."""
    fn = _PY_ARITHMETIC.get(op) or _PY_COMPARISON.get(op)
    if fn is None:
        raise KeyError(f"unknown operator {op!r}")
    return fn


def _merge_dim(left: Optional[int], right: Optional[int], what: str) -> Optional[int]:
    if left is not None and right is not None:
        if left != right:
            raise TypeCheckError(
                f"element-wise arithmetic on tensors with different {what}: "
                f"{left} vs {right}"
            )
        return left
    return left if left is not None else right


def arithmetic_result_type(op: str, left: DataType, right: DataType) -> DataType:
    """Result type of ``left op right`` for an arithmetic operator, or a
    :class:`TypeCheckError` when the combination is not defined."""
    if op not in ARITHMETIC_OPS:
        raise KeyError(f"not an arithmetic operator: {op!r}")

    scalar = common_numeric_type(left, right)
    if scalar is not None:
        return scalar

    left_tensor, right_tensor = left.is_tensor(), right.is_tensor()
    if left_tensor and right_tensor:
        if isinstance(left, VectorType) and isinstance(right, VectorType):
            return VectorType(_merge_dim(left.length, right.length, "lengths"))
        if isinstance(left, MatrixType) and isinstance(right, MatrixType):
            rows = _merge_dim(left.rows, right.rows, "row counts")
            cols = _merge_dim(left.cols, right.cols, "column counts")
            return MatrixType(rows, cols)
        raise TypeCheckError(
            f"arithmetic between {left!r} and {right!r} is not defined; "
            f"convert with row_matrix()/col_matrix() first"
        )
    if left_tensor or right_tensor:
        tensor, other = (left, right) if left_tensor else (right, left)
        if other.is_numeric():
            return tensor
        raise TypeCheckError(
            f"arithmetic between {tensor!r} and non-numeric {other!r}"
        )
    raise TypeCheckError(f"arithmetic between {left!r} and {right!r}")


def comparison_result_type(op: str, left: DataType, right: DataType) -> DataType:
    """Comparisons yield BOOLEAN; tensors only support (in)equality."""
    if op not in COMPARISON_OPS:
        raise KeyError(f"not a comparison operator: {op!r}")
    if left.is_tensor() or right.is_tensor():
        if op not in ("=", "<>", "!="):
            raise TypeCheckError(f"ordering comparison {op!r} on {left!r}")
        if type(left) is not type(right):
            raise TypeCheckError(f"cannot compare {left!r} with {right!r}")
        return BOOLEAN
    if isinstance(left, StringType) != isinstance(right, StringType):
        raise TypeCheckError(f"cannot compare {left!r} with {right!r}")
    if left == BOOLEAN or right == BOOLEAN:
        if left != right:
            raise TypeCheckError(f"cannot compare {left!r} with {right!r}")
    return BOOLEAN


def arithmetic_flops(op: str, left: DataType, right: DataType) -> float:
    """FLOPs charged for one evaluation of ``left op right``."""

    def elements(data_type: DataType) -> float:
        if isinstance(data_type, VectorType):
            return float(
                data_type.length if data_type.length is not None else DEFAULT_UNKNOWN_DIM
            )
        if isinstance(data_type, MatrixType):
            rows = data_type.rows if data_type.rows is not None else DEFAULT_UNKNOWN_DIM
            cols = data_type.cols if data_type.cols is not None else DEFAULT_UNKNOWN_DIM
            return float(rows * cols)
        return 1.0

    return max(elements(left), elements(right))
