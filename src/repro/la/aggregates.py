"""Aggregate functions, including the paper's type-construction aggregates.

The standard SQL aggregates are overloaded over the new types (section
3.2): ``SUM`` over a MATRIX column performs entry-by-entry addition, which
is what makes ``SELECT SUM(outer_product(vec, vec)) FROM v`` a one-line
Gram-matrix computation.

Three special aggregates construct tensors from labeled parts (section
3.3):

* ``VECTORIZE`` over LABELED_SCALAR values builds a VECTOR whose length is
  the largest label seen; holes become zero;
* ``ROWMATRIX`` over labeled VECTORs builds a MATRIX using each vector as
  the row named by its label;
* ``COLMATRIX`` does the same with columns.

Labels are 1-based. Every aggregate is implemented as a pair of
*accumulate* and *merge* steps so the engine can run distributed
partial aggregation before the shuffle.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ExecutionError, RuntimeTypeError, TypeCheckError
from ..types import (
    DOUBLE,
    INTEGER,
    DataType,
    DoubleType,
    IntegerType,
    LabeledScalar,
    LabeledScalarType,
    Matrix,
    MatrixType,
    StringType,
    Vector,
    VectorType,
)
from ..types.scalar import DEFAULT_UNKNOWN_DIM


class Aggregate:
    """Base class; one instance per (aggregate, input type) is stateless —
    state lives in the accumulator objects the methods pass around."""

    name = "AGGREGATE"

    #: True when partial aggregation before the shuffle is algebraically
    #: valid (it is for every aggregate here except AVG, which instead
    #: decomposes into SUM/COUNT inside the engine).
    distributive = True

    def result_type(self, arg_type: DataType) -> DataType:
        """Result type for the given input type; raises TypeCheckError when
        the overload does not exist."""
        raise NotImplementedError

    def create(self):
        """A fresh accumulator (None means 'no input seen yet')."""
        return None

    def add(self, state, value):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def finish(self, state):
        return state

    def add_flops(self, arg_type: DataType) -> float:
        """FLOPs charged for accumulating one input value."""
        return _elements(arg_type)


def _elements(arg_type: DataType) -> float:
    if isinstance(arg_type, VectorType):
        length = arg_type.length if arg_type.length is not None else DEFAULT_UNKNOWN_DIM
        return float(length)
    if isinstance(arg_type, MatrixType):
        rows = arg_type.rows if arg_type.rows is not None else DEFAULT_UNKNOWN_DIM
        cols = arg_type.cols if arg_type.cols is not None else DEFAULT_UNKNOWN_DIM
        return float(rows * cols)
    return 1.0


def _numeric(value):
    if isinstance(value, LabeledScalar):
        return value.value
    return value


class SumAggregate(Aggregate):
    name = "SUM"

    def result_type(self, arg_type: DataType) -> DataType:
        if isinstance(arg_type, IntegerType):
            return INTEGER
        if isinstance(arg_type, (DoubleType, LabeledScalarType)):
            return DOUBLE
        if arg_type.is_tensor():
            return arg_type
        raise TypeCheckError(f"SUM is not defined over {arg_type!r}")

    def add(self, state, value):
        value = _numeric(value)
        if value is None:
            return state
        return value if state is None else state + value

    merge = add


class CountAggregate(Aggregate):
    name = "COUNT"

    def result_type(self, arg_type: DataType) -> DataType:
        return INTEGER

    def create(self):
        return 0

    def add(self, state, value):
        return state + (0 if value is None else 1)

    def merge(self, left, right):
        return left + right

    def add_flops(self, arg_type: DataType) -> float:
        return 1.0


class MinAggregate(Aggregate):
    """MIN over scalars; over VECTOR/MATRIX it is *element-wise* (the same
    overloading convention that makes SUM entry-by-entry, section 3.2),
    which the blocked distance computation relies on."""

    name = "MIN"
    _np_pick = staticmethod(np.minimum)

    def result_type(self, arg_type: DataType) -> DataType:
        if isinstance(arg_type, (IntegerType, DoubleType, StringType)):
            return arg_type
        if isinstance(arg_type, LabeledScalarType):
            return DOUBLE
        if arg_type.is_tensor():
            return arg_type
        raise TypeCheckError(f"{self.name} is not defined over {arg_type!r}")

    def _pick_pair(self, state, value):
        if isinstance(state, Vector) or isinstance(value, Vector):
            if not isinstance(state, Vector) or not isinstance(value, Vector):
                raise RuntimeTypeError(f"{self.name}: mixed vector/scalar inputs")
            if state.length != value.length:
                raise RuntimeTypeError(
                    f"{self.name}: vector lengths differ "
                    f"({state.length} vs {value.length})"
                )
            return Vector(type(self)._np_pick(state.data, value.data))
        if isinstance(state, Matrix) or isinstance(value, Matrix):
            if not isinstance(state, Matrix) or not isinstance(value, Matrix):
                raise RuntimeTypeError(f"{self.name}: mixed matrix/scalar inputs")
            if state.shape != value.shape:
                raise RuntimeTypeError(
                    f"{self.name}: matrix shapes differ "
                    f"({state.shape} vs {value.shape})"
                )
            return Matrix(type(self)._np_pick(state.data, value.data))
        if self.name == "MIN":
            return min(state, value)
        return max(state, value)

    def add(self, state, value):
        value = _numeric(value)
        if value is None:
            return state
        return value if state is None else self._pick_pair(state, value)

    merge = add


class MaxAggregate(MinAggregate):
    name = "MAX"
    _np_pick = staticmethod(np.maximum)


class AvgAggregate(Aggregate):
    """AVG decomposes into (SUM, COUNT) so it can still be partially
    aggregated before the shuffle."""

    name = "AVG"
    distributive = True

    def result_type(self, arg_type: DataType) -> DataType:
        if isinstance(arg_type, (IntegerType, DoubleType, LabeledScalarType)):
            return DOUBLE
        if arg_type.is_tensor():
            return arg_type
        raise TypeCheckError(f"AVG is not defined over {arg_type!r}")

    def add(self, state, value):
        value = _numeric(value)
        if value is None:
            return state
        if state is None:
            return (value, 1)
        total, count = state
        return (total + value, count + 1)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return (left[0] + right[0], left[1] + right[1])

    def finish(self, state):
        if state is None:
            return None
        total, count = state
        return total / count


class VectorizeAggregate(Aggregate):
    """Build a VECTOR from LABELED_SCALAR values (paper section 3.3)."""

    name = "VECTORIZE"

    def result_type(self, arg_type: DataType) -> DataType:
        if not isinstance(arg_type, LabeledScalarType):
            raise TypeCheckError(
                f"VECTORIZE requires a LABELED_SCALAR input (build one with "
                f"label_scalar), got {arg_type!r}"
            )
        return VectorType(None)

    def create(self):
        return {}

    def add(self, state: Dict[int, float], value):
        if value is None:
            return state
        if not isinstance(value, LabeledScalar):
            raise RuntimeTypeError(
                f"VECTORIZE expects LABELED_SCALAR values, got {type(value).__name__}"
            )
        if value.label < 1:
            raise ExecutionError(
                f"VECTORIZE: label {value.label} is not a valid 1-based "
                f"position; use label_scalar to set it"
            )
        state[value.label] = value.value
        return state

    def merge(self, left: Dict[int, float], right: Dict[int, float]):
        left.update(right)
        return left

    def finish(self, state: Optional[Dict[int, float]]):
        if not state:
            return None
        length = max(state)
        data = np.zeros(length)
        for label, value in state.items():
            data[label - 1] = value
        return Vector(data)

    def add_flops(self, arg_type: DataType) -> float:
        return 1.0


class _MatrixFromVectors(Aggregate):
    """Shared machinery for ROWMATRIX and COLMATRIX."""

    #: 'row' or 'col'
    orientation = "row"

    def result_type(self, arg_type: DataType) -> DataType:
        if not isinstance(arg_type, VectorType):
            raise TypeCheckError(
                f"{self.name} requires VECTOR inputs, got {arg_type!r}"
            )
        if self.orientation == "row":
            return MatrixType(None, arg_type.length)
        return MatrixType(arg_type.length, None)

    def create(self):
        return {}

    def add(self, state: Dict[int, Vector], value):
        if value is None:
            return state
        if not isinstance(value, Vector):
            raise RuntimeTypeError(
                f"{self.name} expects VECTOR values, got {type(value).__name__}"
            )
        if value.label < 1:
            raise ExecutionError(
                f"{self.name}: vector label {value.label} is not a valid "
                f"1-based position; set it with label_vector"
            )
        state[value.label] = value
        return state

    def merge(self, left, right):
        left.update(right)
        return left

    def finish(self, state: Optional[Dict[int, Vector]]):
        if not state:
            return None
        lengths = {vector.length for vector in state.values()}
        if len(lengths) != 1:
            raise RuntimeTypeError(
                f"{self.name}: input vectors have differing lengths {sorted(lengths)}"
            )
        width = lengths.pop()
        count = max(state)
        data = np.zeros((count, width))
        for label, vector in state.items():
            data[label - 1] = vector.data
        matrix = Matrix(data)
        if self.orientation == "col":
            matrix = Matrix(data.T.copy())
        return matrix


class RowMatrixAggregate(_MatrixFromVectors):
    name = "ROWMATRIX"
    orientation = "row"


class ColMatrixAggregate(_MatrixFromVectors):
    name = "COLMATRIX"
    orientation = "col"


_AGGREGATES: Dict[str, Aggregate] = {
    agg.name: agg
    for agg in (
        SumAggregate(),
        CountAggregate(),
        MinAggregate(),
        MaxAggregate(),
        AvgAggregate(),
        VectorizeAggregate(),
        RowMatrixAggregate(),
        ColMatrixAggregate(),
    )
}


def lookup_aggregate(name: str) -> Optional[Aggregate]:
    """Find an aggregate by (case-insensitive) name, or None."""
    return _AGGREGATES.get(name.upper())


def is_aggregate_name(name: str) -> bool:
    return name.upper() in _AGGREGATES
