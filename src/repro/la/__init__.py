"""Linear algebra kernel: built-in functions, overloaded arithmetic and
aggregates (paper sections 3.1-3.3)."""

from .aggregates import Aggregate, is_aggregate_name, lookup_aggregate
from .arithmetic import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    arithmetic_flops,
    arithmetic_result_type,
    comparison_result_type,
    python_operator,
)
from .functions import BuiltinFunction, all_builtins, lookup

__all__ = [
    "ARITHMETIC_OPS",
    "Aggregate",
    "BuiltinFunction",
    "COMPARISON_OPS",
    "all_builtins",
    "arithmetic_flops",
    "arithmetic_result_type",
    "comparison_result_type",
    "is_aggregate_name",
    "lookup",
    "lookup_aggregate",
    "python_operator",
]
