"""The built-in linear algebra function library (paper sections 3.1-3.3).

Each built-in is registered with three pieces of information:

* a **templated type signature** (section 4.2), used by the binder for
  compile-time size checking and by the optimizer to infer the exact size
  of every intermediate result;
* an **implementation** over runtime values (floats, ints,
  :class:`~repro.types.Vector`, :class:`~repro.types.Matrix`,
  :class:`~repro.types.LabeledScalar`);
* a **FLOP cost formula**, used both by the cost-based optimizer and by
  the simulated cluster to charge compute time.

Labels and positions are **1-based** throughout, matching the paper's
convention that a vector built by ``VECTORIZE`` has as many entries as its
largest label.

The paper reports 22 built-ins; this library implements a superset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError, RuntimeTypeError
from ..types import (
    DataType,
    LabeledScalar,
    Matrix,
    MatrixType,
    Signature,
    Vector,
    VectorType,
    runtime_shape_check,
)
from ..types.scalar import DEFAULT_UNKNOWN_DIM

#: Type of a FLOP-cost formula: receives the concrete dimensions bound for
#: each templated variable and returns an estimated FLOP count.
CostFormula = Callable[[Dict[str, float]], float]


def _dim(value: Optional[int]) -> float:
    """A dimension for cost purposes: fall back to a default when the
    schema leaves it unspecified."""
    return float(value) if value is not None else float(DEFAULT_UNKNOWN_DIM)


def _type_dims(arg_types: Sequence[DataType], signature: Signature) -> Dict[str, float]:
    """Best-effort binding of the signature's dimension variables from the
    *declared* argument types, for cost estimation only (never raises)."""
    from ..types.signature import SigMatrix, SigVector

    dims: Dict[str, float] = {}

    def note(name, value):
        if isinstance(name, str) and name not in dims:
            dims[name] = value

    for param, arg in zip(signature.params, arg_types):
        if isinstance(param, SigVector) and isinstance(arg, VectorType):
            note(param.dim, _dim(arg.length))
        elif isinstance(param, SigMatrix) and isinstance(arg, MatrixType):
            note(param.rows, _dim(arg.rows))
            note(param.cols, _dim(arg.cols))
    return dims


def _value_dims(args: Sequence[object], signature: Signature) -> Dict[str, float]:
    """Binding of the signature's dimension variables from runtime values."""
    from ..types.signature import SigMatrix, SigVector

    dims: Dict[str, float] = {}
    for param, arg in zip(signature.params, args):
        if isinstance(param, SigVector) and isinstance(arg, Vector):
            if isinstance(param.dim, str):
                dims.setdefault(param.dim, float(arg.length))
        elif isinstance(param, SigMatrix) and isinstance(arg, Matrix):
            if isinstance(param.rows, str):
                dims.setdefault(param.rows, float(arg.rows))
            if isinstance(param.cols, str):
                dims.setdefault(param.cols, float(arg.cols))
    return dims


@dataclass
class BuiltinFunction:
    """One entry in the built-in function registry.

    ``kind`` classifies the FLOP cost for the cluster simulator:
    ``blas3`` kernels (matrix-matrix multiply, inverse, solve) run at the
    cache-friendly dense rate; everything else (``blas1``) is
    memory-bound.
    """

    name: str
    signature: Signature
    impl: Callable
    cost: CostFormula
    doc: str = ""
    kind: str = "blas1"
    #: optional vectorized kernel for the batch interpreter, called as
    #: ``batch_impl(arg_lists, indices)`` over rows that passed the
    #: (uniform) shape check. Only registered where the batched kernel
    #: performs the exact same IEEE operations as ``impl`` per row, so
    #: results are bit-identical to the row-at-a-time path.
    batch_impl: Optional[Callable] = None

    def bind(self, arg_types: Sequence[DataType]) -> DataType:
        """Compile-time type check; returns the concrete result type."""
        return self.signature.bind(arg_types)

    def estimate_flops(self, arg_types: Sequence[DataType]) -> float:
        """Estimated FLOPs per call given declared argument types."""
        return self.cost(_type_dims(arg_types, self.signature))

    def runtime_flops(self, args: Sequence[object]) -> float:
        """Exact FLOPs for one call over concrete runtime values."""
        return self.cost(_value_dims(args, self.signature))

    def __call__(self, *args):
        ok, message = runtime_shape_check(self.signature, args)
        if not ok:
            raise RuntimeTypeError(message)
        return self.impl(*args)


_REGISTRY: Dict[str, BuiltinFunction] = {}


def register(sig_text: str, cost: CostFormula, doc: str = "", kind: str = "blas1"):
    """Decorator registering a built-in under the signature's name."""

    def wrap(impl: Callable) -> BuiltinFunction:
        signature = Signature.parse(sig_text)
        function = BuiltinFunction(signature.name, signature, impl, cost, doc, kind)
        if signature.name in _REGISTRY:
            raise ValueError(f"duplicate builtin {signature.name}")
        _REGISTRY[signature.name] = function
        return function

    return wrap


def lookup(name: str) -> Optional[BuiltinFunction]:
    """Find a built-in by (case-insensitive) name, or None."""
    return _REGISTRY.get(name.lower())


def all_builtins() -> List[BuiltinFunction]:
    return sorted(_REGISTRY.values(), key=lambda fn: fn.name)


def _num(value) -> float:
    if isinstance(value, LabeledScalar):
        return value.value
    return float(value)


def _index(value, what: str, upper: int) -> int:
    """Validate a 1-based index and convert it to 0-based."""
    index = int(value)
    if not 1 <= index <= upper:
        raise ExecutionError(f"{what} {index} out of range 1..{upper}")
    return index - 1


# ---------------------------------------------------------------------------
# multiplication family
# ---------------------------------------------------------------------------


@register(
    "matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]",
    lambda d: 2 * d.get("a", 1) * d.get("b", 1) * d.get("c", 1),
    "Matrix-matrix product.",
    kind="blas3",
)
def matrix_multiply(left: Matrix, right: Matrix) -> Matrix:
    if left.cols != right.rows:
        raise RuntimeTypeError(
            f"matrix_multiply: inner dimensions differ ({left.cols} vs {right.rows})"
        )
    return Matrix(left.data @ right.data)


@register(
    "matrix_vector_multiply(MATRIX[a][b], VECTOR[b]) -> VECTOR[a]",
    lambda d: 2 * d.get("a", 1) * d.get("b", 1),
    "Matrix times column vector.",
)
def matrix_vector_multiply(matrix: Matrix, vector: Vector) -> Vector:
    if matrix.cols != vector.length:
        raise RuntimeTypeError(
            f"matrix_vector_multiply: matrix has {matrix.cols} columns but "
            f"vector has {vector.length} entries"
        )
    return Vector(matrix.data @ vector.data)


@register(
    "vector_matrix_multiply(VECTOR[a], MATRIX[a][b]) -> VECTOR[b]",
    lambda d: 2 * d.get("a", 1) * d.get("b", 1),
    "Row vector times matrix.",
)
def vector_matrix_multiply(vector: Vector, matrix: Matrix) -> Vector:
    if vector.length != matrix.rows:
        raise RuntimeTypeError(
            f"vector_matrix_multiply: vector has {vector.length} entries but "
            f"matrix has {matrix.rows} rows"
        )
    return Vector(vector.data @ matrix.data)


@register(
    "outer_product(VECTOR[a], VECTOR[b]) -> MATRIX[a][b]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Outer product of two vectors.",
)
def outer_product(left: Vector, right: Vector) -> Matrix:
    return Matrix(np.outer(left.data, right.data))


def _outer_product_batch(arg_lists, indices):
    # one broadcast multiply over the whole chunk performs exactly the
    # per-row elementwise multiplies np.outer performs, so each slice is
    # bit-identical to the row path's result (einsum is NOT: it loses
    # the sign of -0.0 products)
    left = np.stack([arg_lists[0][i].data for i in indices])
    right = np.stack([arg_lists[1][i].data for i in indices])
    products = left[:, :, None] * right[:, None, :]
    return [Matrix(products[k]) for k in range(len(indices))]


outer_product.batch_impl = _outer_product_batch


@register(
    "inner_product(VECTOR[a], VECTOR[a]) -> DOUBLE",
    lambda d: 2 * d.get("a", 1),
    "Dot product of two vectors.",
)
def inner_product(left: Vector, right: Vector) -> float:
    if left.length != right.length:
        raise RuntimeTypeError(
            f"inner_product: vector lengths differ ({left.length} vs {right.length})"
        )
    return float(left.data @ right.data)


# ---------------------------------------------------------------------------
# structural operations
# ---------------------------------------------------------------------------


@register(
    "trans_matrix(MATRIX[a][b]) -> MATRIX[b][a]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Matrix transpose.",
)
def trans_matrix(matrix: Matrix) -> Matrix:
    return Matrix(matrix.data.T.copy())


@register(
    "diag(MATRIX[a][a]) -> VECTOR[a]",
    lambda d: d.get("a", 1),
    "Extract the diagonal of a square matrix.",
)
def diag(matrix: Matrix) -> Vector:
    if matrix.rows != matrix.cols:
        raise RuntimeTypeError(f"diag: matrix is not square ({matrix.shape})")
    return Vector(np.diagonal(matrix.data).copy())


@register(
    "diag_matrix(VECTOR[a]) -> MATRIX[a][a]",
    lambda d: d.get("a", 1) ** 2,
    "Build a diagonal matrix from a vector.",
)
def diag_matrix(vector: Vector) -> Matrix:
    return Matrix(np.diag(vector.data))


@register(
    "row_matrix(VECTOR[a]) -> MATRIX[1][a]",
    lambda d: d.get("a", 1),
    "Reinterpret a vector as a one-row matrix.",
)
def row_matrix(vector: Vector) -> Matrix:
    return Matrix(vector.data.reshape(1, -1).copy())


@register(
    "col_matrix(VECTOR[a]) -> MATRIX[a][1]",
    lambda d: d.get("a", 1),
    "Reinterpret a vector as a one-column matrix.",
)
def col_matrix(vector: Vector) -> Matrix:
    return Matrix(vector.data.reshape(-1, 1).copy())


@register(
    "get_row(MATRIX[a][b], INTEGER) -> VECTOR[b]",
    lambda d: d.get("b", 1),
    "Extract one row (1-based index) as a vector.",
)
def get_row(matrix: Matrix, row: int) -> Vector:
    return Vector(matrix.data[_index(row, "row index", matrix.rows)].copy())


@register(
    "get_col(MATRIX[a][b], INTEGER) -> VECTOR[a]",
    lambda d: d.get("a", 1),
    "Extract one column (1-based index) as a vector.",
)
def get_col(matrix: Matrix, col: int) -> Vector:
    return Vector(matrix.data[:, _index(col, "column index", matrix.cols)].copy())


@register(
    "get_scalar(VECTOR[a], INTEGER) -> DOUBLE",
    lambda d: 1.0,
    "Extract one entry (1-based index) from a vector; used to normalize a "
    "vector back into tuples (paper section 3.3).",
)
def get_scalar(vector: Vector, index: int) -> float:
    return float(vector.data[_index(index, "vector index", vector.length)])


@register(
    "get_element(MATRIX[a][b], INTEGER, INTEGER) -> DOUBLE",
    lambda d: 1.0,
    "Extract one entry (1-based indexes) from a matrix.",
)
def get_element(matrix: Matrix, row: int, col: int) -> float:
    row0 = _index(row, "row index", matrix.rows)
    col0 = _index(col, "column index", matrix.cols)
    return float(matrix.data[row0, col0])


# ---------------------------------------------------------------------------
# labels (the glue for VECTORIZE / ROWMATRIX / COLMATRIX, section 3.3)
# ---------------------------------------------------------------------------


@register(
    "label_scalar(DOUBLE, INTEGER) -> LABELED_SCALAR",
    lambda d: 0.0,
    "Attach an integer label to a double.",
)
def label_scalar(value, label: int) -> LabeledScalar:
    return LabeledScalar(_num(value), int(label))


@register(
    "label_vector(VECTOR[a], INTEGER) -> VECTOR[a]",
    lambda d: d.get("a", 1),
    "Return a copy of the vector with its label set.",
)
def label_vector(vector: Vector, label: int) -> Vector:
    return vector.with_label(int(label))


@register(
    "get_label(VECTOR[a]) -> INTEGER",
    lambda d: 0.0,
    "Read a vector's label (-1 when never set).",
)
def get_label(vector: Vector) -> int:
    return int(vector.label)


# ---------------------------------------------------------------------------
# solvers and decomposition-backed operations
# ---------------------------------------------------------------------------


@register(
    "matrix_inverse(MATRIX[a][a]) -> MATRIX[a][a]",
    lambda d: 2.0 * d.get("a", 1) ** 3,
    "Inverse of a square matrix.",
    kind="blas3",
)
def matrix_inverse(matrix: Matrix) -> Matrix:
    if matrix.rows != matrix.cols:
        raise RuntimeTypeError(f"matrix_inverse: matrix is not square ({matrix.shape})")
    try:
        return Matrix(np.linalg.inv(matrix.data))
    except np.linalg.LinAlgError as exc:
        raise ExecutionError(f"matrix_inverse: {exc}") from exc


@register(
    "pseudo_inverse(MATRIX[a][b]) -> MATRIX[b][a]",
    lambda d: 4.0 * d.get("a", 1) * d.get("b", 1) * min(d.get("a", 1), d.get("b", 1)),
    "Moore-Penrose pseudo-inverse.",
    kind="blas3",
)
def pseudo_inverse(matrix: Matrix) -> Matrix:
    return Matrix(np.linalg.pinv(matrix.data))


@register(
    "solve(MATRIX[a][a], VECTOR[a]) -> VECTOR[a]",
    lambda d: (2.0 / 3.0) * d.get("a", 1) ** 3,
    "Solve the linear system A x = b.",
    kind="blas3",
)
def solve(matrix: Matrix, vector: Vector) -> Vector:
    if matrix.rows != matrix.cols:
        raise RuntimeTypeError(f"solve: matrix is not square ({matrix.shape})")
    if matrix.rows != vector.length:
        raise RuntimeTypeError(
            f"solve: matrix is {matrix.rows}x{matrix.cols} but vector has "
            f"{vector.length} entries"
        )
    try:
        return Vector(np.linalg.solve(matrix.data, vector.data))
    except np.linalg.LinAlgError as exc:
        raise ExecutionError(f"solve: {exc}") from exc


@register(
    "determinant(MATRIX[a][a]) -> DOUBLE",
    lambda d: (2.0 / 3.0) * d.get("a", 1) ** 3,
    "Determinant of a square matrix.",
    kind="blas3",
)
def determinant(matrix: Matrix) -> float:
    if matrix.rows != matrix.cols:
        raise RuntimeTypeError(f"determinant: matrix is not square ({matrix.shape})")
    return float(np.linalg.det(matrix.data))


@register(
    "trace(MATRIX[a][a]) -> DOUBLE",
    lambda d: d.get("a", 1),
    "Trace of a square matrix.",
)
def trace(matrix: Matrix) -> float:
    if matrix.rows != matrix.cols:
        raise RuntimeTypeError(f"trace: matrix is not square ({matrix.shape})")
    return float(np.trace(matrix.data))


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


@register(
    "norm_vector(VECTOR[a]) -> DOUBLE",
    lambda d: 2 * d.get("a", 1),
    "Euclidean norm of a vector.",
)
def norm_vector(vector: Vector) -> float:
    return float(np.linalg.norm(vector.data))


@register(
    "sum_vector(VECTOR[a]) -> DOUBLE",
    lambda d: d.get("a", 1),
    "Sum of the entries of a vector.",
)
def sum_vector(vector: Vector) -> float:
    return float(np.sum(vector.data))


@register(
    "sum_matrix(MATRIX[a][b]) -> DOUBLE",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Sum of the entries of a matrix.",
)
def sum_matrix(matrix: Matrix) -> float:
    return float(np.sum(matrix.data))


@register(
    "min_vector(VECTOR[a]) -> DOUBLE",
    lambda d: d.get("a", 1),
    "Smallest entry of a vector.",
)
def min_vector(vector: Vector) -> float:
    return float(np.min(vector.data))


@register(
    "max_vector(VECTOR[a]) -> DOUBLE",
    lambda d: d.get("a", 1),
    "Largest entry of a vector.",
)
def max_vector(vector: Vector) -> float:
    return float(np.max(vector.data))


@register(
    "index_min(VECTOR[a]) -> INTEGER",
    lambda d: d.get("a", 1),
    "1-based position of the smallest entry.",
)
def index_min(vector: Vector) -> int:
    return int(np.argmin(vector.data)) + 1


@register(
    "index_max(VECTOR[a]) -> INTEGER",
    lambda d: d.get("a", 1),
    "1-based position of the largest entry.",
)
def index_max(vector: Vector) -> int:
    return int(np.argmax(vector.data)) + 1


@register(
    "row_sums(MATRIX[a][b]) -> VECTOR[a]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Vector of per-row sums.",
)
def row_sums(matrix: Matrix) -> Vector:
    return Vector(matrix.data.sum(axis=1))


@register(
    "col_sums(MATRIX[a][b]) -> VECTOR[b]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Vector of per-column sums.",
)
def col_sums(matrix: Matrix) -> Vector:
    return Vector(matrix.data.sum(axis=0))


@register(
    "row_mins(MATRIX[a][b]) -> VECTOR[a]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Vector of per-row minima (cf. SystemML's rowMins, used by the "
    "paper's distance computation).",
)
def row_mins(matrix: Matrix) -> Vector:
    return Vector(matrix.data.min(axis=1))


@register(
    "row_maxs(MATRIX[a][b]) -> VECTOR[a]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Vector of per-row maxima.",
)
def row_maxs(matrix: Matrix) -> Vector:
    return Vector(matrix.data.max(axis=1))


@register(
    "col_mins(MATRIX[a][b]) -> VECTOR[b]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Vector of per-column minima.",
)
def col_mins(matrix: Matrix) -> Vector:
    return Vector(matrix.data.min(axis=0))


@register(
    "col_maxs(MATRIX[a][b]) -> VECTOR[b]",
    lambda d: d.get("a", 1) * d.get("b", 1),
    "Vector of per-column maxima.",
)
def col_maxs(matrix: Matrix) -> Vector:
    return Vector(matrix.data.max(axis=0))


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------


@register(
    "identity_matrix(INTEGER) -> MATRIX[][]",
    lambda d: float(DEFAULT_UNKNOWN_DIM) ** 2,
    "The n-by-n identity matrix.",
)
def identity_matrix(n: int) -> Matrix:
    if int(n) <= 0:
        raise ExecutionError(f"identity_matrix: size must be positive, got {n}")
    return Matrix(np.eye(int(n)))


@register(
    "zeros_vector(INTEGER) -> VECTOR[]",
    lambda d: float(DEFAULT_UNKNOWN_DIM),
    "A vector of n zeros.",
)
def zeros_vector_fn(n: int) -> Vector:
    if int(n) <= 0:
        raise ExecutionError(f"zeros_vector: size must be positive, got {n}")
    return Vector(np.zeros(int(n)))


@register(
    "ones_vector(INTEGER) -> VECTOR[]",
    lambda d: float(DEFAULT_UNKNOWN_DIM),
    "A vector of n ones.",
)
def ones_vector(n: int) -> Vector:
    if int(n) <= 0:
        raise ExecutionError(f"ones_vector: size must be positive, got {n}")
    return Vector(np.ones(int(n)))


# ---------------------------------------------------------------------------
# element-wise math
# ---------------------------------------------------------------------------


def _register_elementwise(stem: str, np_fn, doc: str):
    @register(
        f"{stem}_vector(VECTOR[a]) -> VECTOR[a]",
        lambda d: d.get("a", 1),
        f"Element-wise {doc} of a vector.",
    )
    def _vec(vector: Vector) -> Vector:
        return Vector(np_fn(vector.data))

    @register(
        f"{stem}_matrix(MATRIX[a][b]) -> MATRIX[a][b]",
        lambda d: d.get("a", 1) * d.get("b", 1),
        f"Element-wise {doc} of a matrix.",
    )
    def _mat(matrix: Matrix) -> Matrix:
        return Matrix(np_fn(matrix.data))


_register_elementwise("abs", np.abs, "absolute value")
_register_elementwise("exp", np.exp, "exponential")
_register_elementwise("log", np.log, "natural logarithm")
_register_elementwise("sqrt", np.sqrt, "square root")


@register(
    "min_vectors(VECTOR[a], VECTOR[a]) -> VECTOR[a]",
    lambda d: d.get("a", 1),
    "Element-wise minimum of two vectors (cf. SystemML's min(X, Y)); "
    "used by the blocked distance computation.",
)
def min_vectors(left: Vector, right: Vector) -> Vector:
    if left.length != right.length:
        raise RuntimeTypeError(
            f"min_vectors: vector lengths differ ({left.length} vs {right.length})"
        )
    return Vector(np.minimum(left.data, right.data))


@register(
    "max_vectors(VECTOR[a], VECTOR[a]) -> VECTOR[a]",
    lambda d: d.get("a", 1),
    "Element-wise maximum of two vectors.",
)
def max_vectors(left: Vector, right: Vector) -> Vector:
    if left.length != right.length:
        raise RuntimeTypeError(
            f"max_vectors: vector lengths differ ({left.length} vs {right.length})"
        )
    return Vector(np.maximum(left.data, right.data))
