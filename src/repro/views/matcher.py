"""View-based query answering: match aggregate subtrees against views.

The matcher rewrites a scalar-aggregate subtree

    Aggregate[no keys] -> [Filter] -> Scan t

into a ``ViewScan`` of a fresh incremental materialized view over ``t``
whose predicate and aggregate arguments are structurally identical. The
comparison is by expression key after renaming the view's scan columns
onto the query's (column ids are plan-wide and differ between bindings;
names are the stable join point). The view may compute a superset of the
query's aggregates in any order — ``spec_indices`` records which view
spec answers which query output, preserving the query's column ids so
nothing downstream renumbers.

The replacement emits one row in a single partition, exactly like the
scalar FinalAggregate it displaces, and the stored states were folded in
engine order — so the rewrite is unconditionally bit-identical and only
needs the optimizer's cost gate to confirm it is *cheaper* (it always
is, but the gate keeps the contract uniform with limit pushdown).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..plan.logical import (
    AggregateNode,
    FilterNode,
    LogicalNode,
    ScanNode,
    ViewScanNode,
)


class ViewMatcher:
    """Matches logical subtrees against the catalog's materialized views."""

    def __init__(self, catalog):
        self._catalog = catalog

    def match_aggregate(
        self, node: AggregateNode
    ) -> Tuple[Optional[ViewScanNode], int]:
        """A ViewScan answering ``node`` from stored state, or None.
        Also returns how many candidate views were considered, so the
        caller can count a miss (considered > 0, no replacement)."""
        from ..plan.optimizer import substitute

        if node.group_exprs or node.group_columns:
            return None, 0
        if any(spec.distinct for spec in node.aggregates):
            return None, 0
        child = node.child
        predicate = None
        if isinstance(child, FilterNode):
            predicate = child.predicate
            child = child.child
        if not isinstance(child, ScanNode):
            return None, 0
        table = child.table.name.lower()

        query_cols = {
            column.name.lower(): column for column in child.columns
        }
        considered = 0
        for view in self._catalog.materialized_views():
            if not view.incremental or table not in view.base_tables:
                continue
            if not view.fresh:
                continue
            considered += 1
            # rename the view's scan columns onto the query's by name
            subst = {}
            ok = True
            for view_column in view.scan_columns:
                query_column = query_cols.get(view_column.name.lower())
                if query_column is None:
                    ok = False
                    break
                subst[view_column.var().key()] = query_column.var()
            if not ok:
                continue
            if (predicate is None) != (view.predicate is None):
                continue
            if predicate is not None:
                if substitute(view.predicate, subst).key() != predicate.key():
                    continue
            indices = self._match_specs(node, view, subst, substitute)
            if indices is None:
                continue
            return ViewScanNode(view, node.columns, indices), considered
        return None, considered

    @staticmethod
    def _match_specs(
        node: AggregateNode, view, subst, substitute
    ) -> Optional[List[int]]:
        """For each query aggregate, the index of the view spec that
        computes it — or None when any query aggregate has no match."""
        indices: List[int] = []
        for query_spec in node.aggregates:
            found = None
            for position, view_spec in enumerate(view.specs):
                if view_spec.aggregate.name != query_spec.aggregate.name:
                    continue
                if (view_spec.arg is None) != (query_spec.arg is None):
                    continue
                if view_spec.arg is not None:
                    renamed = substitute(view_spec.arg, subst)
                    if renamed.key() != query_spec.arg.key():
                        continue
                found = position
                break
            if found is None:
                return None
            indices.append(found)
        return indices
