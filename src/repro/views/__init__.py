"""Materialized views with incremental delta maintenance.

The paper's headline workloads — Gram matrices, covariance, normal
equations — are semiring aggregates: they fold through ``create``/
``add``/``merge`` exactly like the engine's distributed partial
aggregation, which means an append of *k* rows can be folded into stored
per-slot accumulator states in O(k), without rescanning the table
(Shaikhha et al., "Semi-Ring Dictionaries"; ``append_stats`` proves the
same pattern for statistics).

Three pieces:

* :class:`MaterializedView` — one view's definition, classification
  (incremental vs full), and stored state;
* :class:`ViewRegistry` — the database-level subsystem: creates and
  drops views, reacts to base-table changes (delta fold or tracked full
  refresh, eager or deferred per ``ClusterConfig.view_refresh_mode``),
  and keeps the cumulative counters served by
  ``QueryService.stats()["views"]``;
* :class:`ViewMatcher` — the optimizer hook that rewrites matching
  aggregate subtrees into ``ViewScan`` nodes (see docs/VIEWS.md).
"""

from .definition import MaterializedView
from .matcher import ViewMatcher
from .registry import ViewRegistry

__all__ = ["MaterializedView", "ViewMatcher", "ViewRegistry"]
