"""One materialized view: definition, classification, stored state.

A view is **incremental** when its bound plan has the shape

    Project[ColumnVars] -> Aggregate[no keys, no DISTINCT] -> [Filter] -> Scan

i.e. a scalar aggregate (SUM/COUNT/AVG/MIN/MAX and the tensor
aggregates — ``SUM(outer_product(x, x))`` is the Gram matrix) over a
single base table with an optional parameter-free predicate. For that
class the view stores *per-slot accumulator states* plus a per-slot
consumed-row cursor; an append folds only the new suffix of each
partition (both storage back ends append in insert order), which is the
O(delta) maintenance path. The per-slot states are folded and merged in
exactly the order the engine's PartialAggregate → gather →
FinalAggregate pipeline would fold them, so answering from the view is
bit-identical to rescanning.

Everything else (GROUP BY, DISTINCT, joins, subqueries, ORDER BY, ...)
is a **full** view: the stored result rows are recomputed by a tracked
refresh — eagerly on every base-table change, or deferred until
``REFRESH MATERIALIZED VIEW`` (the view goes stale and the optimizer
stops matching it) per the ``view_refresh_mode`` config knob.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from ..engine.storage import RowView
from ..errors import CompileError
from ..plan.logical import (
    AggregateNode,
    AggSpec,
    FilterNode,
    LogicalNode,
    OutputColumn,
    ProjectNode,
    ScanNode,
    ViewScanNode,
)
from ..plan.expressions import ColumnVar, ParamExpr, TypedExpr


def _contains_param(expr: Optional[TypedExpr]) -> bool:
    if expr is None:
        return False
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ParamExpr):
            return True
        stack.extend(node.children())
    return False


def _base_tables(plan: LogicalNode) -> Set[str]:
    """Lowercase names of every base table the plan reads (through
    nested view scans as well — a view over a view depends on the inner
    view's bases)."""
    names: Set[str] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, ScanNode):
            names.add(node.table.name.lower())
        elif isinstance(node, ViewScanNode):
            names |= set(node.view.base_tables)
        stack.extend(node.children())
    return names


def _copy_state(state):
    """A safe-to-merge copy of one accumulator state. ``merge`` mutates
    dict-based states (VECTORIZE/ROWMATRIX/COLMATRIX) in place, and the
    stored per-slot states must survive being answered from."""
    if isinstance(state, dict):
        return dict(state)
    return state  # numbers, tensors, and (sum, count) tuples are immutable


class MaterializedView:
    """A catalog-registered materialized view and its stored state."""

    def __init__(
        self,
        name: str,
        query,  # sql.ast.SelectStatement
        column_names: Optional[List[str]],
        plan: LogicalNode,
        slots: int,
    ):
        self.name = name
        self.query = query
        self.column_names = list(column_names) if column_names is not None else None
        if column_names is not None and len(column_names) != len(plan.columns):
            raise CompileError(
                f"materialized view {name!r}: {len(column_names)} column "
                f"name(s) for {len(plan.columns)} column(s)"
            )
        names = column_names or [column.name for column in plan.columns]
        #: output schema: (name, DataType) pairs
        self.columns: List[Tuple[str, object]] = [
            (out_name, column.data_type)
            for out_name, column in zip(names, plan.columns)
        ]
        self.base_tables: Set[str] = _base_tables(plan)
        self.slots = slots

        # -- classification -------------------------------------------------
        incremental = self._classify(plan)
        self.mode = "incremental" if incremental else "full"

        # -- incremental artifacts ------------------------------------------
        if incremental:
            project, aggregate, predicate, scan = incremental
            self._entry = scan.table  # catalog TableEntry (storage lives here)
            self.predicate: Optional[TypedExpr] = predicate
            self.specs: List[AggSpec] = list(aggregate.aggregates)
            self.scan_columns: List[OutputColumn] = list(scan.columns)
            self._scan_index: Dict[int, int] = {
                column.column_id: position
                for position, column in enumerate(scan.columns)
            }
            spec_ids = {
                spec.output.column_id: i for i, spec in enumerate(self.specs)
            }
            #: for each output column, which aggregate spec produces it
            self.output_spec_indices: List[int] = [
                spec_ids[expr.column_id] for expr in project.exprs
            ]
        else:
            self._entry = None
            self.predicate = None
            self.specs = []
            self.scan_columns = []
            self._scan_index = {}
            self.output_spec_indices = []

        # -- stored state ---------------------------------------------------
        #: per-slot accumulator lists (one state per spec); None marks a
        #: slot that has contributed no post-filter row yet — mirroring
        #: PartialAggregate, which emits no states-row for such slots
        self._slot_states: List[Optional[List[object]]] = [None] * slots
        #: per-slot count of *pre-filter* rows already folded
        self._consumed: List[int] = [0] * slots
        #: full-mode stored result rows (in gathered result order)
        self.rows: List[tuple] = []
        #: a deferred view whose base changed non-incrementally; serving
        #: it would not be bit-identical, so the matcher skips it
        self.stale = False
        #: deferred incremental views re-fold lazily when this is set
        #: (a delete or truncate invalidated the append-only cursors)
        self._dirty = False

        # -- counters (cumulative; surfaced via registry.stats()) -----------
        self.maintain_count = 0
        self.delta_rows = 0
        self.refresh_count = 0
        self.hits = 0

        self._lock = threading.RLock()

    # -- classification ------------------------------------------------------

    @staticmethod
    def _classify(plan: LogicalNode):
        """The (project, aggregate, predicate, scan) tuple when ``plan``
        is in the incrementally maintainable class, else None."""
        if not isinstance(plan, ProjectNode):
            return None
        if not all(isinstance(expr, ColumnVar) for expr in plan.exprs):
            return None
        aggregate = plan.child
        if not isinstance(aggregate, AggregateNode):
            return None
        if aggregate.group_exprs or aggregate.group_columns:
            return None
        if any(spec.distinct for spec in aggregate.aggregates):
            return None
        child = aggregate.child
        predicate = None
        if isinstance(child, FilterNode):
            predicate = child.predicate
            child = child.child
        if not isinstance(child, ScanNode):
            return None
        if _contains_param(predicate) or any(
            _contains_param(spec.arg) for spec in aggregate.aggregates
        ):
            return None
        spec_ids = {spec.output.column_id for spec in aggregate.aggregates}
        if not all(expr.column_id in spec_ids for expr in plan.exprs):
            return None
        return plan, aggregate, predicate, child

    @property
    def incremental(self) -> bool:
        return self.mode == "incremental"

    @property
    def base_table_name(self) -> Optional[str]:
        """The single base table of an incremental view."""
        return self._entry.name if self._entry is not None else None

    # -- incremental maintenance ---------------------------------------------

    def fold_new_rows(self) -> int:
        """Fold each partition's unconsumed suffix into the per-slot
        states — the O(delta) path. Returns the number of pre-filter
        rows folded. Must not be called on a full view."""
        assert self.incremental
        storage = self._entry.storage
        folded = 0
        with self._lock:
            for slot in range(self.slots):
                rows = storage.partition_rows(slot)
                start = self._consumed[slot]
                if start > len(rows):
                    # the partition shrank under us: cursors are invalid
                    self._refold_locked()
                    return 0
                if start == len(rows):
                    continue
                folded += len(rows) - start
                self._fold_slot(slot, rows[start:])
                self._consumed[slot] = len(rows)
            if folded:
                self.maintain_count += 1
                self.delta_rows += folded
        return folded

    def _fold_slot(self, slot: int, rows) -> None:
        """Fold rows (in partition order) into one slot's states —
        byte-for-byte the loop PartialAggregate runs on that slot."""
        states = self._slot_states[slot]
        for row in rows:
            view = RowView(row, self._scan_index)
            if self.predicate is not None and not self.predicate.evaluate(view):
                continue
            if states is None:
                states = [spec.aggregate.create() for spec in self.specs]
                self._slot_states[slot] = states
            for i, spec in enumerate(self.specs):
                value = spec.arg.evaluate(view) if spec.arg is not None else 1
                states[i] = spec.aggregate.add(states[i], value)

    def refold(self) -> None:
        """Rebuild the incremental state from scratch (REFRESH, deletes,
        restore onto a different cluster shape). Tracked as a refresh."""
        assert self.incremental
        with self._lock:
            self._refold_locked()

    def _refold_locked(self) -> None:
        self._slot_states = [None] * self.slots
        self._consumed = [0] * self.slots
        storage = self._entry.storage
        for slot in range(self.slots):
            rows = storage.partition_rows(slot)
            self._fold_slot(slot, rows)
            self._consumed[slot] = len(rows)
        self._dirty = False
        self.refresh_count += 1

    def mark_dirty(self) -> None:
        """Deferred mode: a non-append change invalidated the cursors;
        the next read re-folds."""
        with self._lock:
            self._dirty = True

    def catch_up(self) -> int:
        """Bring an incremental view current (deferred mode folds here,
        at read time, instead of at write time). Returns rows folded."""
        with self._lock:
            if self._dirty:
                self._refold_locked()
                return 0
            return self.fold_new_rows()

    # -- answering -----------------------------------------------------------

    def finished_values(self) -> List[object]:
        """One finished value per aggregate spec, computed exactly like
        FinalAggregate: merge the contributing slots' states in ascending
        slot order, then ``finish`` (or ``finish(create())`` when no slot
        contributed — SQL's one-row-on-empty-input rule)."""
        assert self.incremental
        with self._lock:
            # cheap no-op when current; folds pending deltas when
            # running deferred (and re-folds when dirty)
            self.catch_up()
            merged: Optional[List[object]] = None
            for states in self._slot_states:
                if states is None:
                    continue
                if merged is None:
                    merged = [_copy_state(state) for state in states]
                else:
                    for i, spec in enumerate(self.specs):
                        merged[i] = spec.aggregate.merge(merged[i], states[i])
            if merged is None:
                return [
                    spec.aggregate.finish(spec.aggregate.create())
                    for spec in self.specs
                ]
            return [
                spec.aggregate.finish(state)
                for spec, state in zip(self.specs, merged)
            ]

    def answer_rows(self, spec_indices: Optional[List[int]]) -> List[tuple]:
        """The rows a ViewScan of this view emits (single partition).
        ``spec_indices`` selects/permutes the incremental view's
        aggregates; None emits a full view's stored rows verbatim."""
        with self._lock:
            self.hits += 1
            if spec_indices is None:
                return list(self.rows)
            finished = self.finished_values()
            return [tuple(finished[i] for i in spec_indices)]

    # -- full-view state ------------------------------------------------------

    def set_rows(self, rows: List[tuple]) -> None:
        """Install a full refresh's recomputed result rows."""
        with self._lock:
            self.rows = list(rows)
            self.stale = False
            self.refresh_count += 1

    @property
    def fresh(self) -> bool:
        """Whether the optimizer may answer from this view. Incremental
        views self-catch-up at read time and are always servable; a full
        view is servable until a deferred base change marks it stale."""
        return self.incremental or not self.stale

    def estimated_rows(self) -> float:
        return 1.0 if self.incremental else float(len(self.rows))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "mode": self.mode,
                "base_tables": sorted(self.base_tables),
                "fresh": self.fresh,
                "hits": self.hits,
                "maintenance_runs": self.maintain_count,
                "delta_rows": self.delta_rows,
                "refreshes": self.refresh_count,
            }

    def __repr__(self) -> str:
        return f"MaterializedView({self.name!r}, {self.mode})"
