"""The database-level materialized-view subsystem.

One :class:`ViewRegistry` per :class:`repro.Database`. It owns the
lifecycle (``CREATE``/``REFRESH``/``DROP MATERIALIZED VIEW``), reacts to
base-table changes from the DML paths, and keeps the cumulative counters
that ``QueryService.stats()["views"]`` serves.

Refresh-mode semantics (``ClusterConfig.view_refresh_mode``):

* ``"eager"`` (default) — incremental views fold the appended suffix at
  write time (O(delta), under the writer's exclusive admission); full
  views recompute immediately on any base-table change. Every view is
  always fresh.
* ``"deferred"`` — writes only invalidate: incremental views catch up
  lazily at the next read (the fold moves from the write path to the
  first read), full views go stale and are skipped by the optimizer
  until an explicit ``REFRESH MATERIALIZED VIEW``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..errors import CatalogError, CompileError
from .definition import MaterializedView


class ViewRegistry:
    """Creates, maintains, refreshes, and drops materialized views."""

    def __init__(self, db):
        self._db = db
        # reentrancy guard: a full refresh runs the view's own SELECT,
        # whose planning must not be answered from the view being
        # refreshed (or trigger further maintenance)
        self._refreshing = False
        #: per-statement maintenance summary, stashed by the DML hooks
        #: and picked up into that statement's QueryMetrics
        self.last_maintenance: Dict[str, int] = {}
        self._lock = threading.RLock()

    @property
    def refresh_mode(self) -> str:
        return self._db.config.view_refresh_mode

    # -- lifecycle -----------------------------------------------------------

    def create(self, name: str, query, column_names=None) -> MaterializedView:
        """Bind, classify, register, and initially populate a view."""
        from ..plan.binder import Binder

        db = self._db
        # bind with no parameters: a materialized view's state cannot
        # depend on per-query parameter values
        binder = Binder(db.catalog)
        try:
            plan = binder.bind_select(query)
        except CompileError as exc:
            if "parameter" in str(exc):
                raise CompileError(
                    f"materialized view {name!r}: parameters are not "
                    f"allowed in the defining query"
                ) from exc
            raise
        view = MaterializedView(
            name, query, column_names, plan, db.config.slots
        )
        db.catalog.create_materialized_view(view)
        try:
            if view.incremental:
                view.fold_new_rows()
                # the initial build is neither a refresh nor maintenance
                view.refresh_count = 0
                view.maintain_count = 0
                view.delta_rows = 0
            else:
                self._recompute(view)
                view.refresh_count = 0
        except Exception:
            db.catalog.drop_materialized_view(name)
            raise
        return view

    def restore(
        self,
        name: str,
        query,
        column_names=None,
        rows=None,
        stale: bool = False,
    ) -> MaterializedView:
        """Recreate a view from a snapshot payload. An incremental view
        re-folds from the restored partitions (bit-identical — the
        partitions land verbatim, so per-slot fold order reproduces); a
        full view gets its saved ``rows`` (and staleness) back verbatim
        instead of recomputing — a stale deferred view must stay stale."""
        from ..plan.binder import Binder

        db = self._db
        plan = Binder(db.catalog).bind_select(query)
        view = MaterializedView(
            name, query, column_names, plan, db.config.slots
        )
        db.catalog.create_materialized_view(view)
        try:
            if view.incremental:
                view.fold_new_rows()
                view.refresh_count = 0
                view.maintain_count = 0
                view.delta_rows = 0
            elif rows is not None:
                view.rows = [tuple(row) for row in rows]
                view.stale = stale
            else:  # defensive: a payload without rows recomputes
                self._recompute(view)
                view.refresh_count = 0
        except Exception:
            db.catalog.drop_materialized_view(name)
            raise
        return view

    def drop(self, name: str, if_exists: bool = False) -> None:
        self._db.catalog.drop_materialized_view(name, if_exists=if_exists)

    def refresh(self, name: str) -> MaterializedView:
        """REFRESH MATERIALIZED VIEW: rebuild from the base tables —
        a from-scratch re-fold for incremental views, a recompute for
        full views (also how a stale deferred view becomes fresh)."""
        view = self._db.catalog.materialized_view(name)
        if view is None:
            raise CatalogError(f"no materialized view named {name!r}")
        if view.incremental:
            view.refold()
        else:
            self._recompute(view)
        return view

    # -- base-table change hooks ----------------------------------------------

    def on_table_appended(self, table: str) -> None:
        """Rows were appended to ``table`` (INSERT/CTAS/load): the
        O(delta) path for incremental views."""
        self._on_change(table, append_only=True)

    def on_table_changed(self, table: str) -> None:
        """``table`` changed non-incrementally (DELETE/truncate)."""
        self._on_change(table, append_only=False)

    def _on_change(self, table: str, append_only: bool) -> None:
        with self._lock:
            if self._refreshing:
                return
            summary = {"maintained": 0, "delta_rows": 0, "refreshes": 0}
            key = table.lower()
            eager = self.refresh_mode == "eager"
            for view in self._db.catalog.materialized_views():
                if key not in view.base_tables:
                    continue
                if view.incremental:
                    if append_only:
                        if eager:
                            summary["delta_rows"] += view.fold_new_rows()
                            summary["maintained"] += 1
                        # deferred: the read-side catch_up folds later
                    else:
                        if eager:
                            view.refold()
                            summary["refreshes"] += 1
                        else:
                            view.mark_dirty()
                else:
                    if eager:
                        self._recompute(view)
                        summary["refreshes"] += 1
                    else:
                        view.stale = True
            self.last_maintenance = summary
            self._db.catalog.bump_version()

    # -- full recompute -------------------------------------------------------

    def _recompute(self, view: MaterializedView) -> None:
        """Re-run a full view's defining query (with view matching
        disabled, so a view never answers its own refresh) and install
        the result rows."""
        with self._lock:
            previous = self._refreshing
            self._refreshing = True
            try:
                result = self._db._run_select(
                    view.query, params=None, use_views=False
                )
            finally:
                self._refreshing = previous
            view.set_rows(result.rows)

    # -- introspection --------------------------------------------------------

    def take_last_maintenance(self) -> Dict[str, int]:
        """The maintenance summary of the most recent DML statement
        (consumed by the statement's Result metrics)."""
        with self._lock:
            summary = self.last_maintenance
            self.last_maintenance = {}
            return summary

    def stats(self) -> Dict[str, object]:
        views = self._db.catalog.materialized_views()
        per_view = {view.name: view.stats() for view in views}
        return {
            "count": len(views),
            "refresh_mode": self.refresh_mode,
            "hits": sum(view.hits for view in views),
            "maintenance_runs": sum(view.maintain_count for view in views),
            "delta_rows": sum(view.delta_rows for view in views),
            "refreshes": sum(view.refresh_count for view in views),
            "views": per_view,
        }
