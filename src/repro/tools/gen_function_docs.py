"""Regenerate docs/FUNCTIONS.md from the built-in function registry.

Run:  python -m repro.tools.gen_function_docs [output-path]
"""

from __future__ import annotations

import sys

from ..la import all_builtins


def render() -> str:
    lines = [
        "# Built-in function reference",
        "",
        "Generated from the registry (`python -m repro.tools.gen_function_docs`).",
        "Every function carries a templated type signature (paper section 4.2)",
        "used for compile-time dimension checking and optimizer size inference,",
        "and a cost class: **blas3** kernels run at the dense cache-friendly",
        "rate, **blas1** operations are memory-bound.",
        "",
        "| function | signature | cost class | description |",
        "|---|---|---|---|",
    ]
    for fn in all_builtins():
        doc = " ".join(fn.doc.split())
        lines.append(f"| `{fn.name}` | `{fn.signature!r}` | {fn.kind} | {doc} |")
    lines += [
        "",
        f"Total: {len(all_builtins())} built-ins "
        "(the paper reports 22; this is a superset).",
        "",
        "## Aggregates",
        "",
        "| aggregate | input | result | notes |",
        "|---|---|---|---|",
        "| `SUM` | numeric, VECTOR, MATRIX | same type | entry-by-entry over tensors (section 3.2) |",
        "| `COUNT` | anything | INTEGER | `COUNT(*)` and `COUNT(DISTINCT x)` supported |",
        "| `MIN` / `MAX` | numeric, STRING, VECTOR, MATRIX | same type | element-wise over tensors (extension) |",
        "| `AVG` | numeric, VECTOR, MATRIX | DOUBLE / tensor | decomposes into SUM/COUNT for partial aggregation |",
        "| `VECTORIZE` | LABELED_SCALAR | VECTOR[] | builds a vector from labeled doubles; length = largest label; holes are zero (section 3.3) |",
        "| `ROWMATRIX` | labeled VECTOR | MATRIX[][n] | each vector becomes the row named by its label |",
        "| `COLMATRIX` | labeled VECTOR | MATRIX[n][] | each vector becomes the column named by its label |",
        "",
        "Labels and positions are 1-based throughout.",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    path = args[0] if args else "docs/FUNCTIONS.md"
    with open(path, "w") as handle:
        handle.write(render())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
