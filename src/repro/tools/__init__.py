"""Developer tooling: documentation generators."""
