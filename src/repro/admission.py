"""Reader–writer statement admission for the database.

Historically every statement serialized on a single ``Database._exec_lock``
— correct, but it capped the PR 6 server's real throughput at
single-statement speed. The engine's execution model (independent
per-partition units of work, thread-local metrics, per-statement
executors) never needed that: only the *catalog and table storage* must
not change underneath a running statement.

:class:`AdmissionGate` encodes exactly that discipline:

* **shared** admission — read-only statements (SELECT / UNION, and the
  read phase of EXPLAIN ANALYZE). Any number run concurrently; each
  sees the catalog version current at admission, and because no writer
  can be interleaved, that snapshot is stable for the statement's whole
  lifetime (the plan cache additionally keys compiled plans on the
  catalog version).
* **exclusive** admission — DDL/DML (CREATE/DROP/INSERT/DELETE/``load``)
  and configuration swaps (``set_execution_mode``). Exactly one runs,
  with no readers in flight; it bumps the catalog version as before.

Semantics:

* Reentrant both ways: a thread holding either side may re-enter it
  (UNION branches re-plan and re-execute inside the statement's
  admission; CTAS/INSERT ... SELECT run their inner SELECT while
  holding the exclusive side).
* A thread holding **exclusive** may also enter **shared** (the inner
  SELECT above). The reverse — upgrading shared to exclusive — would
  deadlock with a concurrent upgrader and raises ``RuntimeError``.
* Writer preference: once a writer waits, *new* readers queue behind it
  (reentrant readers still pass), so DDL cannot be starved by a steady
  stream of queries.

Lock ordering: the service layer acquires its own ``_lock`` before the
gate and never the reverse, so the two can never deadlock against each
other.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional


class AdmissionGate:
    """A reentrant reader–writer gate (see module docstring)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: per-thread shared admission depth
        self._readers: Dict[int, int] = {}
        #: thread ident holding exclusive admission, with its depth
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._writers_waiting = 0
        # cumulative counters (exposed through Database.stats paths)
        self.shared_admissions = 0
        self.exclusive_admissions = 0
        # alias for the lock-discipline auditor (assigned last; every
        # post-construction write above happens under the condition)
        self._lock = self._cond

    # -- shared (read-only statements) -------------------------------------

    def acquire_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # reentrant, or a writer reading inside its own admission
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1
            self.shared_admissions += 1

    def release_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_shared without a matching acquire")
            if depth == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    @contextmanager
    def shared(self):
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    # -- exclusive (DDL / DML / config swaps) ------------------------------

    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._readers.get(me):
                raise RuntimeError(
                    "cannot upgrade a shared admission to exclusive"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
            self.exclusive_admissions += 1

    def release_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError(
                    "release_exclusive by a thread not holding it"
                )
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "shared_admissions": self.shared_admissions,
                "exclusive_admissions": self.exclusive_admissions,
                "active_readers": len(self._readers),
                "writer_active": int(self._writer is not None),
                "writers_waiting": self._writers_waiting,
            }
